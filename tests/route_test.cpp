// Global router tests: tree validity, length lower bounds, congestion
// response, determinism.

#include <gtest/gtest.h>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"
#include "mth/route/router.hpp"
#include "mth/util/rng.hpp"

namespace mth::route {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.05;
    return flows::prepare_case(synth::spec_by_name("aes_360"), opt);
  }();
  return pc;
}

TEST(Router, EveryNonClockNetRouted) {
  const Design& d = small_case().initial;
  const RouteResult r = route_design(d);
  ASSERT_EQ(r.nets.size(), static_cast<std::size_t>(d.netlist.num_nets()));
  for (NetId n = 0; n < d.netlist.num_nets(); ++n) {
    const Net& net = d.netlist.net(n);
    const NetRoute& nr = r.nets[static_cast<std::size_t>(n)];
    if (net.is_clock || net.degree() < 2) {
      EXPECT_EQ(nr.length, 0);
      continue;
    }
    EXPECT_EQ(nr.parent.size(), static_cast<std::size_t>(net.degree()));
    EXPECT_EQ(nr.parent[0], -1);  // driver is the root
  }
  EXPECT_GT(r.total_wirelength, 0);
}

TEST(Router, TreeIsConnectedAndAcyclic) {
  const Design& d = small_case().initial;
  const RouteResult r = route_design(d);
  for (NetId n = 0; n < d.netlist.num_nets(); ++n) {
    const Net& net = d.netlist.net(n);
    if (net.is_clock || net.degree() < 2) continue;
    const NetRoute& nr = r.nets[static_cast<std::size_t>(n)];
    // Every non-root reaches the root without cycles.
    for (int i = 1; i < net.degree(); ++i) {
      int steps = 0;
      int cur = i;
      while (cur != 0 && steps <= net.degree()) {
        cur = nr.parent[static_cast<std::size_t>(cur)];
        ASSERT_GE(cur, 0) << "disconnected pin on net " << net.name;
        ++steps;
      }
      ASSERT_LE(steps, net.degree()) << "cycle on net " << net.name;
    }
  }
}

TEST(Router, LengthAtLeastHpwlPerNet) {
  // A Steiner tree can never be shorter than the net HPWL.
  const Design& d = small_case().initial;
  const RouteResult r = route_design(d);
  for (NetId n = 0; n < d.netlist.num_nets(); ++n) {
    const Net& net = d.netlist.net(n);
    if (net.is_clock || net.degree() < 2) continue;
    EXPECT_GE(r.nets[static_cast<std::size_t>(n)].length, net_hpwl(d, n))
        << net.name;
  }
}

TEST(Router, TwoPinNetLengthIsManhattan) {
  const Design& d = small_case().initial;
  const RouteResult r = route_design(d);
  int checked = 0;
  for (NetId n = 0; n < d.netlist.num_nets(); ++n) {
    const Net& net = d.netlist.net(n);
    if (net.is_clock || net.degree() != 2) continue;
    const Point a = d.netlist.pin_position(net.pins[0], *d.library);
    const Point b = d.netlist.pin_position(net.pins[1], *d.library);
    // Two-pin nets route as an L (possibly detoured when congested); length
    // must equal Manhattan unless rip-up added detour.
    EXPECT_GE(r.nets[static_cast<std::size_t>(n)].length, manhattan(a, b));
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(Router, TotalEqualsSumOfNets) {
  const Design& d = small_case().initial;
  const RouteResult r = route_design(d);
  Dbu sum = 0;
  for (const NetRoute& nr : r.nets) sum += nr.length;
  EXPECT_EQ(sum, r.total_wirelength);
}

TEST(Router, Deterministic) {
  const Design& d = small_case().initial;
  const RouteResult a = route_design(d);
  const RouteResult b = route_design(d);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.overflowed_edges, b.overflowed_edges);
}

TEST(Router, GridSizeOption) {
  const Design& d = small_case().initial;
  RouterOptions opt;
  opt.gcell_size = d.floorplan.row(0).height * 3;
  const RouteResult r = route_design(d, opt);
  EXPECT_GT(r.grid_nx, 0);
  EXPECT_GT(r.grid_ny, 0);
  EXPECT_GT(r.total_wirelength, 0);
}

TEST(Router, CongestionReliefReducesOverflow) {
  // Starve capacity, then check that rip-up passes do not increase overflow
  // versus no passes at all.
  const Design& d = small_case().initial;
  RouterOptions starved;
  starved.layers_per_dir = 1;
  starved.wire_pitch = 640.0;  // very few tracks
  starved.ripup_passes = 0;
  const RouteResult before = route_design(d, starved);
  starved.ripup_passes = 4;
  const RouteResult after = route_design(d, starved);
  EXPECT_LE(after.overflowed_edges, before.overflowed_edges);
  EXPECT_GT(before.overflowed_edges, 0) << "test needs congestion to bite";
}

TEST(Router, WirelengthTracksPlacementQuality) {
  // Scrambling the placement must increase routed wirelength.
  Design d = small_case().initial;
  const Dbu good = route_design(d).total_wirelength;
  Rng rng(3);
  const Rect core = d.floorplan.core();
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    Instance& inst = d.netlist.instance(i);
    const CellMaster& m = d.master_of(i);
    inst.pos = {rng.uniform_int(core.lo.x, core.hi.x - m.width),
                rng.uniform_int(core.lo.y, core.hi.y - m.height)};
  }
  const Dbu bad = route_design(d).total_wirelength;
  EXPECT_GT(bad, good * 3 / 2);
}

}  // namespace
}  // namespace mth::route
