// RowList property tests: the doubly-linked row structure is driven through
// randomized swap_adjacent / remove / insert_after sequences in lockstep
// with a brute-force vector-of-rows model, asserting structural equality
// and the full check() invariant set after every step. Also covers the
// linked-list detailed-placement improver built on top of it.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "mth/db/metrics.hpp"
#include "mth/db/mlef.hpp"
#include "mth/legal/abacus.hpp"
#include "mth/legal/improve.hpp"
#include "mth/legal/rowlist.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/place/placer.hpp"
#include "mth/synth/generator.hpp"

namespace mth::legal {
namespace {

Design make_placed_design(const char* name, double scale,
                          std::uint64_t seed = 7) {
  auto lib = liberty::library_ref();
  synth::GeneratorOptions gen;
  gen.scale = scale;
  gen.seed = seed;
  Design d =
      synth::generate_testcase(synth::spec_by_name(name), lib, gen).design;
  double minority_area = 0, total = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const double a = static_cast<double>(d.master_of(i).area());
    total += a;
    if (d.is_minority(i)) minority_area += a;
  }
  static std::vector<std::shared_ptr<MlefTransform>> keep_alive;
  keep_alive.push_back(
      std::make_shared<MlefTransform>(lib, minority_area / total));
  keep_alive.back()->to_mlef(d);
  place::build_uniform_floorplan(d, 0.6, 1.0);
  place::GlobalPlaceOptions gp;
  gp.max_iterations = 10;
  place::global_place(d, gp);
  abacus_legalize(d, {});
  return d;
}

/// Brute-force reference: rows as plain vectors, built the slow way.
std::vector<std::vector<InstId>> model_of(const Design& d) {
  const Netlist& nl = d.netlist;
  std::vector<std::vector<InstId>> rows(
      static_cast<std::size_t>(d.floorplan.num_rows()));
  for (InstId i = 0; i < nl.num_instances(); ++i) {
    rows[static_cast<std::size_t>(d.floorplan.row_at_y(nl.instance(i).pos.y))]
        .push_back(i);
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(), [&](InstId a, InstId b) {
      const Dbu xa = nl.instance(a).pos.x;
      const Dbu xb = nl.instance(b).pos.x;
      return xa != xb ? xa < xb : a < b;
    });
  }
  return rows;
}

/// Full structural comparison: chains, ends, links and row_of must agree
/// with the model exactly, in both directions.
void expect_matches_model(const RowList& rows,
                          const std::vector<std::vector<InstId>>& model) {
  ASSERT_EQ(rows.num_rows(), static_cast<int>(model.size()));
  for (int r = 0; r < rows.num_rows(); ++r) {
    const std::vector<InstId>& m = model[static_cast<std::size_t>(r)];
    EXPECT_EQ(rows.row_first(r), m.empty() ? kInvalidId : m.front());
    EXPECT_EQ(rows.row_last(r), m.empty() ? kInvalidId : m.back());
    InstId i = rows.row_first(r);
    for (std::size_t k = 0; k < m.size(); ++k, i = rows.next(i)) {
      ASSERT_EQ(i, m[k]) << "chain diverges from model in row " << r;
      EXPECT_EQ(rows.pred(i), k > 0 ? m[k - 1] : kInvalidId);
      EXPECT_EQ(rows.row_of(i), r);
    }
    EXPECT_EQ(i, kInvalidId) << "chain longer than model in row " << r;
  }
}

TEST(RowList, BuildMatchesBruteForceModel) {
  const Design d = make_placed_design("aes_360", 0.03);
  const RowList rows(d);
  expect_matches_model(rows, model_of(d));
  std::string why;
  EXPECT_TRUE(rows.check(d, &why)) << why;
}

TEST(RowList, RandomizedOpsStayConsistentWithModel) {
  Design d = make_placed_design("aes_400", 0.02);
  RowList rows(d);
  std::vector<std::vector<InstId>> model = model_of(d);
  std::mt19937_64 rng(1234);

  // Positions are relabeled from the model after each mutation, so check()'s
  // x-order clause grades the *structure* (order == model order), and the
  // layout stays simple: cell k of a row sits at x = 1000 k.
  auto relabel = [&](std::size_t r) {
    const std::vector<InstId>& row = model[r];
    for (std::size_t k = 0; k < row.size(); ++k) {
      d.netlist.instance(row[k]).pos.x = static_cast<Dbu>(1000 * k);
    }
  };
  for (std::size_t r = 0; r < model.size(); ++r) relabel(r);

  auto nonempty_row = [&]() {
    std::size_t r;
    do {
      r = rng() % model.size();
    } while (model[r].empty());
    return r;
  };

  for (int op = 0; op < 2000; ++op) {
    if (rng() % 2 == 0) {  // adjacent swap
      const std::size_t r = nonempty_row();
      if (model[r].size() < 2) continue;
      const std::size_t k = rng() % (model[r].size() - 1);
      rows.swap_adjacent(model[r][k], model[r][k + 1]);
      std::swap(model[r][k], model[r][k + 1]);
      relabel(r);
    } else {  // move: remove + insert_after at a random spot
      const std::size_t r = nonempty_row();
      const std::size_t k = rng() % model[r].size();
      const InstId i = model[r][k];
      rows.remove(i);
      model[r].erase(model[r].begin() + static_cast<std::ptrdiff_t>(k));
      EXPECT_EQ(rows.row_of(i), -1);
      const std::size_t r2 = rng() % model.size();
      const std::size_t j = model[r2].empty() ? 0 : rng() % (model[r2].size() + 1);
      rows.insert_after(i, static_cast<int>(r2),
                        j == 0 ? kInvalidId : model[r2][j - 1]);
      model[r2].insert(model[r2].begin() + static_cast<std::ptrdiff_t>(j), i);
      // The cell's y is stale after a cross-row move; only x matters to
      // check(), which grades order, so park it on the model's layout.
      relabel(r);
      relabel(r2);
    }
    if (op % 64 == 0) {
      std::string why;
      ASSERT_TRUE(rows.check(d, &why)) << "op " << op << ": " << why;
    }
  }
  expect_matches_model(rows, model);
  std::string why;
  EXPECT_TRUE(rows.check(d, &why)) << why;
}

TEST(RowList, CheckRejectsCorruptedStructure) {
  const Design d = make_placed_design("aes_360", 0.02);
  // A swap without the matching position update breaks the x-order clause.
  RowList rows(d);
  for (int r = 0; r < rows.num_rows(); ++r) {
    const InstId a = rows.row_first(r);
    if (a == kInvalidId || rows.next(a) == kInvalidId) continue;
    rows.swap_adjacent(a, rows.next(a));
    std::string why;
    EXPECT_FALSE(rows.check(d, &why));
    EXPECT_NE(why.find("x order"), std::string::npos) << why;
    return;
  }
  FAIL() << "no row with two cells";
}

// ---------------------------------------------------------------------------
// improve_placement: the strict-total-HPWL detailed placer on top of RowList.
// ---------------------------------------------------------------------------

TEST(Improve, NeverIncreasesHpwlAndStaysLegal) {
  Design d = make_placed_design("aes_400", 0.04);
  const Dbu before = total_hpwl(d);
  ImproveOptions opt;
  opt.oracle = [](const Design& g) { return placement_is_legal(g); };
  opt.oracle_every = 1;
  const ImproveStats stats = improve_placement(d, opt);
  EXPECT_EQ(stats.hpwl_before, before);
  EXPECT_LE(stats.hpwl_after, before);
  EXPECT_EQ(stats.hpwl_after, total_hpwl(d));
  EXPECT_GT(stats.accepted_swaps + stats.accepted_shifts, 0);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
}

TEST(Improve, IsDeterministic) {
  Design d1 = make_placed_design("aes_360", 0.03);
  Design d2 = d1;
  const ImproveStats s1 = improve_placement(d1);
  const ImproveStats s2 = improve_placement(d2);
  EXPECT_EQ(s1.accepted_swaps, s2.accepted_swaps);
  EXPECT_EQ(s1.accepted_shifts, s2.accepted_shifts);
  EXPECT_EQ(s1.hpwl_after, s2.hpwl_after);
  for (InstId i = 0; i < d1.netlist.num_instances(); ++i) {
    ASSERT_EQ(d1.netlist.instance(i).pos, d2.netlist.instance(i).pos);
  }
}

TEST(Improve, HpwlIsMonotoneOverPassBudgets) {
  const Design base = make_placed_design("aes_360", 0.03);
  Dbu prev = total_hpwl(base);
  for (int passes = 1; passes <= 4; ++passes) {
    Design d = base;
    ImproveOptions opt;
    opt.max_passes = passes;
    const ImproveStats stats = improve_placement(d, opt);
    EXPECT_LE(stats.hpwl_after, prev) << "more passes made the result worse";
    prev = stats.hpwl_after;
  }
}

TEST(Improve, MoveKindsCanBeDisabled) {
  const Design base = make_placed_design("aes_400", 0.03);
  Design d = base;
  ImproveOptions opt;
  opt.enable_swap = false;
  opt.enable_shift = false;
  const ImproveStats stats = improve_placement(d, opt);
  EXPECT_EQ(stats.accepted_swaps, 0);
  EXPECT_EQ(stats.accepted_shifts, 0);
  EXPECT_EQ(stats.hpwl_after, stats.hpwl_before);
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    ASSERT_EQ(d.netlist.instance(i).pos, base.netlist.instance(i).pos);
  }
}

}  // namespace
}  // namespace mth::legal
