// Global placement tests: floorplan construction, port pinning, density
// spreading, wirelength sanity vs random placement.

#include <gtest/gtest.h>

#include "mth/db/metrics.hpp"
#include "mth/db/mlef.hpp"
#include "mth/legal/abacus.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/place/placer.hpp"
#include "mth/synth/generator.hpp"
#include "mth/util/rng.hpp"

namespace mth::place {
namespace {

Design prepared_mlef_design(const char* name, double scale, double util = 0.6) {
  auto lib = liberty::library_ref();
  synth::GeneratorOptions gen;
  gen.scale = scale;
  Design d = synth::generate_testcase(synth::spec_by_name(name), lib, gen).design;
  double minority_area = 0, total = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const double a = static_cast<double>(d.master_of(i).area());
    total += a;
    if (d.is_minority(i)) minority_area += a;
  }
  static std::vector<std::shared_ptr<MlefTransform>> keep_alive;
  keep_alive.push_back(std::make_shared<MlefTransform>(lib, minority_area / total));
  keep_alive.back()->to_mlef(d);
  build_uniform_floorplan(d, util, 1.0);
  return d;
}

TEST(Floorplanner, UtilizationAndAspect) {
  Design d = prepared_mlef_design("aes_360", 0.05);
  const double cell_area = static_cast<double>(d.total_cell_area());
  const double core_area = static_cast<double>(d.floorplan.core().area());
  EXPECT_NEAR(cell_area / core_area, 0.60, 0.05);
  const double ar = static_cast<double>(d.floorplan.core().height()) /
                    static_cast<double>(d.floorplan.core().width());
  EXPECT_NEAR(ar, 1.0, 0.25);
  EXPECT_EQ(d.floorplan.num_rows() % 2, 0);
}

TEST(Floorplanner, PortsOnBoundary) {
  Design d = prepared_mlef_design("aes_360", 0.05);
  const Rect core = d.floorplan.core();
  for (PortId p = 0; p < d.netlist.num_ports(); ++p) {
    const Point pos = d.netlist.port(p).pos;
    const bool on_edge = pos.x == core.lo.x || pos.x == core.hi.x ||
                         pos.y == core.lo.y || pos.y == core.hi.y;
    EXPECT_TRUE(on_edge) << d.netlist.port(p).name << " at " << pos.x << ','
                         << pos.y;
  }
}

TEST(Floorplanner, RowsFitWidestCell) {
  Design d = prepared_mlef_design("nova_500", 0.01);
  Dbu max_w = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    max_w = std::max(max_w, d.master_of(i).width);
  }
  EXPECT_GE(d.floorplan.core().width(), max_w);
}

TEST(Floorplanner, RejectsNonMlefSpace) {
  auto lib = liberty::library_ref();
  synth::GeneratorOptions gen;
  gen.scale = 0.02;
  Design d =
      synth::generate_testcase(synth::spec_by_name("aes_360"), lib, gen).design;
  // Mixed heights present -> must assert.
  EXPECT_THROW(build_uniform_floorplan(d, 0.6, 1.0), Error);
}

TEST(GlobalPlace, AllCellsInsideCore) {
  Design d = prepared_mlef_design("aes_360", 0.05);
  GlobalPlaceOptions opt;
  opt.max_iterations = 12;
  global_place(d, opt);
  const Rect core = d.floorplan.core();
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const Instance& inst = d.netlist.instance(i);
    const CellMaster& m = d.master_of(i);
    EXPECT_GE(inst.pos.x, core.lo.x);
    EXPECT_LE(inst.pos.x + m.width, core.hi.x);
    EXPECT_GE(inst.pos.y, core.lo.y);
    EXPECT_LE(inst.pos.y + m.height, core.hi.y);
  }
}

TEST(GlobalPlace, SpreadsDensity) {
  Design d = prepared_mlef_design("aes_360", 0.06);
  // All cells at the core center: heavily overflowed.
  const Point c = d.floorplan.core().center();
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    d.netlist.instance(i).pos = c;
  }
  const double before = density_overflow(d);
  GlobalPlaceOptions opt;
  opt.max_iterations = 16;
  global_place(d, opt);
  const double after = density_overflow(d);
  EXPECT_LT(after, before * 0.35);
  EXPECT_LT(after, 0.30);
}

TEST(GlobalPlace, BeatsRandomPlacementOnHpwl) {
  Design d = prepared_mlef_design("aes_360", 0.05);
  // Random legal-ish placement for reference.
  Design rnd = d;
  Rng rng(5);
  const Rect core = rnd.floorplan.core();
  for (InstId i = 0; i < rnd.netlist.num_instances(); ++i) {
    Instance& inst = rnd.netlist.instance(i);
    const CellMaster& m = rnd.master_of(i);
    inst.pos = {rng.uniform_int(core.lo.x, core.hi.x - m.width),
                rng.uniform_int(core.lo.y, core.hi.y - m.height)};
  }
  const Dbu random_hpwl = total_hpwl(rnd);

  GlobalPlaceOptions opt;
  opt.max_iterations = 16;
  global_place(d, opt);
  const Dbu placed_hpwl = total_hpwl(d);
  // The QP+spreading placer alone should win clearly; the flows add a
  // detailed-refinement pass on top (tested in flows_test).
  EXPECT_LT(placed_hpwl, random_hpwl * 2 / 3)
      << "analytic placement must clearly beat random";
}

TEST(GlobalPlace, DeterministicForSeed) {
  Design a = prepared_mlef_design("aes_400", 0.04);
  Design b = prepared_mlef_design("aes_400", 0.04);
  GlobalPlaceOptions opt;
  opt.max_iterations = 8;
  global_place(a, opt);
  global_place(b, opt);
  for (InstId i = 0; i < a.netlist.num_instances(); ++i) {
    ASSERT_EQ(a.netlist.instance(i).pos, b.netlist.instance(i).pos);
  }
}

TEST(GlobalPlace, LegalizableAfterwards) {
  Design d = prepared_mlef_design("jpeg_400", 0.03);
  GlobalPlaceOptions opt;
  opt.max_iterations = 12;
  global_place(d, opt);
  const auto ar = legal::abacus_legalize(d, {});
  ASSERT_TRUE(ar.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
}

TEST(DensityOverflow, ZeroForPerfectSpread) {
  Design d = prepared_mlef_design("aes_400", 0.04);
  GlobalPlaceOptions opt;
  opt.max_iterations = 14;
  global_place(d, opt);
  legal::abacus_legalize(d, {});
  EXPECT_LT(density_overflow(d), 0.35);
}

}  // namespace
}  // namespace mth::place
