// Baseline [10] (Lin & Chang) tests: N_minR sizing, k-means row assignment,
// row-constrained legalization invariants.

#include <gtest/gtest.h>

#include "mth/baseline/linchang.hpp"
#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"

namespace mth::baseline {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.05;
    return flows::prepare_case(synth::spec_by_name("aes_300"), opt);
  }();
  return pc;
}

TEST(AutoMinorityPairs, CoversDemand) {
  const auto& pc = small_case();
  const int n = auto_minority_pairs(pc.initial, *pc.original_library, 0.8);
  ASSERT_GE(n, 1);
  ASSERT_LT(n, pc.initial.floorplan.num_pairs());
  // Capacity at the fill target must cover the original-width demand.
  Dbu demand = 0;
  for (InstId i = 0; i < pc.initial.netlist.num_instances(); ++i) {
    const CellMaster& m =
        pc.original_library->master(pc.initial.netlist.instance(i).master);
    if (m.track_height == TrackHeight::H75T) demand += m.width;
  }
  const Dbu cap = static_cast<Dbu>(n) * 2 * pc.initial.floorplan.core().width();
  EXPECT_GE(static_cast<double>(cap) * 0.8, static_cast<double>(demand) - 1.0);
}

TEST(AutoMinorityPairs, TighterFillNeedsMoreRows) {
  const auto& pc = small_case();
  const int loose = auto_minority_pairs(pc.initial, *pc.original_library, 1.0);
  const int tight = auto_minority_pairs(pc.initial, *pc.original_library, 0.5);
  EXPECT_GE(tight, loose);
}

TEST(KmeansAssign, ExactRowBudget) {
  const auto& pc = small_case();
  const KmeansAssignment ka = assign_rows_kmeans(pc.initial, pc.n_min_pairs);
  EXPECT_EQ(ka.rows.num_minority(), pc.n_min_pairs);
  EXPECT_EQ(ka.rows.num_pairs(), pc.initial.floorplan.num_pairs());
  EXPECT_EQ(ka.minority_cells.size(), ka.cell_pair.size());
  EXPECT_EQ(static_cast<int>(ka.minority_cells.size()),
            pc.initial.num_minority());
}

TEST(KmeansAssign, BindingTargetsMinorityPairs) {
  const auto& pc = small_case();
  const KmeansAssignment ka = assign_rows_kmeans(pc.initial, pc.n_min_pairs);
  for (int p : ka.cell_pair) {
    ASSERT_GE(p, 0);
    EXPECT_TRUE(ka.rows.is_minority_pair(p));
  }
}

TEST(KmeansAssign, RowsTrackMinorityMass) {
  // Minority rows should sit within the vertical extent of minority cells.
  const auto& pc = small_case();
  const KmeansAssignment ka = assign_rows_kmeans(pc.initial, pc.n_min_pairs);
  Dbu lo = INT64_MAX, hi = INT64_MIN;
  for (InstId i : ka.minority_cells) {
    const Dbu y = pc.initial.netlist.instance(i).pos.y;
    lo = std::min(lo, y);
    hi = std::max(hi, y);
  }
  const Floorplan& fp = pc.initial.floorplan;
  for (int p = 0; p < fp.num_pairs(); ++p) {
    if (!ka.rows.is_minority_pair(p)) continue;
    EXPECT_GE(fp.pair_y_center(p), lo - 4 * 540);
    EXPECT_LE(fp.pair_y_center(p), hi + 4 * 540);
  }
}

TEST(Legalize, RowConstraintHolds) {
  const auto& pc = small_case();
  Design d = pc.initial;
  const KmeansAssignment ka = assign_rows_kmeans(d, pc.n_min_pairs);
  const auto r = legalize_with_assignment(d, ka.rows, &ka.minority_cells,
                                          &ka.cell_pair);
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const int row = d.floorplan.row_at_y(d.netlist.instance(i).pos.y);
    EXPECT_EQ(d.is_minority(i), ka.rows.is_minority_row(row))
        << d.netlist.instance(i).name;
  }
}

TEST(Legalize, WorksWithoutBinding) {
  const auto& pc = small_case();
  Design d = pc.initial;
  const KmeansAssignment ka = assign_rows_kmeans(d, pc.n_min_pairs);
  const auto r = legalize_with_assignment(d, ka.rows);
  ASSERT_TRUE(r.success);
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const int row = d.floorplan.row_at_y(d.netlist.instance(i).pos.y);
    EXPECT_EQ(d.is_minority(i), ka.rows.is_minority_row(row));
  }
}

TEST(Legalize, DisplacementReasonable) {
  // The baseline minimizes movement: average displacement should stay within
  // a few row pitches of the initial placement.
  const auto& pc = small_case();
  Design d = pc.initial;
  const KmeansAssignment ka = assign_rows_kmeans(d, pc.n_min_pairs);
  legalize_with_assignment(d, ka.rows, &ka.minority_cells, &ka.cell_pair);
  const double avg = static_cast<double>(
                         total_displacement(d, pc.initial_positions)) /
                     d.netlist.num_instances();
  EXPECT_LT(avg, 6.0 * 2.0 * 270.0);
}

TEST(Legalize, AssignmentSizeMismatchRejected) {
  const auto& pc = small_case();
  Design d = pc.initial;
  RowAssignment wrong = RowAssignment::all_majority(3);
  EXPECT_THROW(legalize_with_assignment(d, wrong), Error);
}

// Parameterized: k-means assignment respects the budget on several cases.
class BaselineSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineSweep, BudgetAndLegality) {
  flows::FlowOptions opt;
  opt.scale = 0.03;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name(GetParam()), opt);
  Design d = pc.initial;
  const KmeansAssignment ka = assign_rows_kmeans(d, pc.n_min_pairs);
  EXPECT_EQ(ka.rows.num_minority(), pc.n_min_pairs);
  const auto r = legalize_with_assignment(d, ka.rows, &ka.minority_cells,
                                          &ka.cell_pair);
  ASSERT_TRUE(r.success) << GetParam();
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << GetParam() << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(Cases, BaselineSweep,
                         ::testing::Values("aes_320", "ldpc_400", "des3_290",
                                           "fpu_4500"));

}  // namespace
}  // namespace mth::baseline
