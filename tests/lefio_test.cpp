// LEF reader/writer tests: write_lef -> read_lef round-trip property over
// the bundled library (geometric/structural fields bit-for-bit), strict
// file:line diagnostics, the single-height fallback, and a seeded mutation
// fuzz holding the parser to "error cleanly, never crash".

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "mth/io/lefio.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/util/error.hpp"

namespace mth::io {
namespace {

std::string lef_text(const Library& library) {
  std::ostringstream os;
  write_lef(os, library);
  return os.str();
}

LefResult parse(const std::string& text, const std::string& label = "t") {
  std::istringstream in(text);
  return read_lef(in, label);
}

/// Parse expecting failure; returns the diagnostic message.
std::string parse_error(const std::string& text) {
  try {
    parse(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "parse unexpectedly succeeded";
  return {};
}

TEST(LefIo, RoundTripsBundledLibrary) {
  const auto lib = liberty::library_ref();
  const LefResult r = parse(lef_text(*lib), "rt");
  ASSERT_TRUE(r.library);
  EXPECT_EQ(r.num_sites, 2);
  EXPECT_EQ(r.num_macros, lib->num_masters());
  EXPECT_EQ(r.skipped_pins, 0);
  EXPECT_EQ(r.inferred_funcs, 0);  // bundled names all carry a known token

  const Library& got = *r.library;
  EXPECT_EQ(got.tech().site_width, lib->tech().site_width);
  EXPECT_EQ(got.tech().mfg_grid, lib->tech().mfg_grid);
  EXPECT_EQ(got.tech().row_height_6t, lib->tech().row_height_6t);
  EXPECT_EQ(got.tech().row_height_75t, lib->tech().row_height_75t);

  ASSERT_EQ(got.num_masters(), lib->num_masters());
  for (int id = 0; id < lib->num_masters(); ++id) {
    const CellMaster& a = lib->master(id);
    const int gid = got.find(a.name);
    ASSERT_GE(gid, 0) << "master lost in round-trip: " << a.name;
    const CellMaster& b = got.master(gid);
    SCOPED_TRACE(a.name);
    EXPECT_EQ(b.func, a.func);
    EXPECT_EQ(b.track_height, a.track_height);
    EXPECT_EQ(b.vt, a.vt);
    EXPECT_EQ(b.drive, a.drive);
    EXPECT_EQ(b.width, a.width);
    EXPECT_EQ(b.height, a.height);
    ASSERT_EQ(b.pins.size(), a.pins.size());
    for (std::size_t p = 0; p < a.pins.size(); ++p) {
      EXPECT_EQ(b.pins[p].name, a.pins[p].name);
      EXPECT_EQ(b.pins[p].offset.x, a.pins[p].offset.x);
      EXPECT_EQ(b.pins[p].offset.y, a.pins[p].offset.y);
      EXPECT_EQ(b.pins[p].is_output, a.pins[p].is_output);
      EXPECT_EQ(b.pins[p].is_clock, a.pins[p].is_clock);
    }
  }
}

TEST(LefIo, WriteReadWriteIsByteIdentical) {
  const auto lib = liberty::library_ref();
  const std::string first = lef_text(*lib);
  const LefResult r = parse(first);
  EXPECT_EQ(lef_text(*r.library), first);
}

const char kMini[] = R"(UNITS
  DATABASE MICRONS 1000 ;
END UNITS
MANUFACTURINGGRID 0.001 ;
SITE s6
  CLASS CORE ;
  SIZE 0.054 BY 0.216 ;
END s6
MACRO INV_X2_LVT
  CLASS CORE ;
  SIZE 0.108 BY 0.216 ;
  PIN A
    DIRECTION INPUT ;
    USE SIGNAL ;
  END A
  PIN Y
    DIRECTION OUTPUT ;
    USE SIGNAL ;
  END Y
END INV_X2_LVT
END LIBRARY
)";

TEST(LefIo, SingleHeightLibrarySynthesizesMinorityHeight) {
  const LefResult r = parse(kMini);
  EXPECT_EQ(r.num_sites, 1);
  const Tech& tech = r.library->tech();
  EXPECT_EQ(tech.row_height_6t, 216);
  EXPECT_EQ(tech.row_height_75t, 270);  // 216 + 216/4, on the 1 nm grid
  tech.check();                         // strict height ordering holds
  const CellMaster& m = r.library->master(0);
  EXPECT_EQ(m.func, CellFunc::Inv);
  EXPECT_EQ(m.drive, 2);
  EXPECT_EQ(m.vt, Vt::LVT);
  // No PORT shapes: both pins default to the cell center.
  ASSERT_EQ(m.pins.size(), 2u);
  EXPECT_EQ(m.pins[0].offset.x, m.width / 2);
  EXPECT_EQ(m.pins[1].offset.y, m.height / 2);
}

TEST(LefIo, PowerPinsAreSkippedAndCounted) {
  std::string text(kMini);
  const std::string hook = "  PIN A\n";
  text.insert(text.find(hook),
              "  PIN VDD\n    DIRECTION INOUT ;\n    USE POWER ;\n  END VDD\n");
  const LefResult r = parse(text);
  EXPECT_EQ(r.skipped_pins, 1);
  EXPECT_EQ(r.library->master(0).pins.size(), 2u);
}

TEST(LefIo, DiagnosticsCarryLabelAndLine) {
  // Unknown top-level keyword, first line.
  EXPECT_EQ(parse_error("GARBAGE ;\n").substr(0, 8), "lef:t:1:");
  // Unknown keyword inside the MACRO body: kMini line 12 is "  PIN A".
  std::string text(kMini);
  text.replace(text.find("  PIN A"), 7, "  BOGUS");
  const std::string err = parse_error(text);
  EXPECT_NE(err.find("lef:t:12:"), std::string::npos) << err;
  EXPECT_NE(err.find("BOGUS"), std::string::npos) << err;
}

TEST(LefIo, RejectsStructurallyInvalidInput) {
  struct Case {
    const char* what;
    const char* from;
    const char* to;
    const char* expect;
  };
  const Case cases[] = {
      {"truncation", "END LIBRARY\n", "", "missing 'END LIBRARY'"},
      {"bad number", "SIZE 0.108 BY", "SIZE x BY", "expected a number"},
      {"width off site grid", "SIZE 0.108 BY", "SIZE 0.1 BY",
       "not a multiple of the site width"},
      {"height matches no site", "SIZE 0.108 BY 0.216 ;", "SIZE 0.108 BY 0.3 ;",
       "matches no CORE site height"},
      {"no output pin", "DIRECTION OUTPUT ;", "DIRECTION INPUT ;",
       "has no OUTPUT pin"},
      {"pin without direction", "    DIRECTION INPUT ;\n", "",
       "has no DIRECTION"},
      {"core site without size", "SIZE 0.054 BY 0.216 ;", "",
       "without a positive SIZE"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.what);
    std::string text(kMini);
    const std::size_t at = text.find(c.from);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string(c.from).size(), c.to);
    const std::string err = parse_error(text);
    EXPECT_EQ(err.substr(0, 6), "lef:t:") << err;
    EXPECT_NE(err.find(c.expect), std::string::npos) << err;
  }
  // Duplicate macro: append a second copy of the MACRO block.
  std::string text(kMini);
  const std::size_t macro_at = text.find("MACRO");
  const std::size_t end_at = text.find("END LIBRARY");
  text.insert(end_at, text.substr(macro_at, end_at - macro_at));
  EXPECT_NE(parse_error(text).find("duplicate MACRO"), std::string::npos);
  // Whole-file structural absences.
  EXPECT_NE(parse_error("END LIBRARY\n").find("no MACRO"), std::string::npos);
  std::string no_site(kMini);
  no_site.replace(no_site.find("CLASS CORE ;\n  SIZE 0.054"), 12,
                  "CLASS PAD  ;");
  EXPECT_NE(parse_error(no_site).find("no CORE SITE"), std::string::npos);
}

// Seeded mutation fuzz: single-character edits, line deletions and
// truncations of a valid LEF must either parse or throw mth::Error — never
// crash, never escape as another exception type. (mth_fuzz --lef-fuzz runs
// the same property open-endedly and under ASan; this is the bounded
// always-on slice.)
TEST(LefIo, MutatedInputErrorsCleanly) {
  const std::string base = lef_text(*liberty::library_ref());
  std::mt19937_64 rng(20260809);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string text = base;
    switch (rng() % 3) {
      case 0:  // replace one character
        text[rng() % text.size()] =
            static_cast<char>("X;.0 \n"[rng() % 6]);
        break;
      case 1:  // truncate
        text.resize(rng() % text.size());
        break;
      default: {  // delete one line
        const std::size_t pos = rng() % text.size();
        const std::size_t a = text.rfind('\n', pos);
        const std::size_t b = text.find('\n', pos);
        text.erase(a == std::string::npos ? 0 : a,
                   (b == std::string::npos ? text.size() : b) -
                       (a == std::string::npos ? 0 : a));
        break;
      }
    }
    try {
      parse(text, "fuzz");
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 300);
  EXPECT_GT(rejected, 0);  // the mutations do exercise the error paths
}

}  // namespace
}  // namespace mth::io
