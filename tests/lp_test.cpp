// LP solver tests: hand-checked problems, status detection, and property
// sweeps against brute force (assignment-problem LP relaxations are integral,
// so the simplex optimum must match the best permutation).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "mth/lp/model.hpp"
#include "mth/lp/simplex.hpp"
#include "mth/util/rng.hpp"

namespace mth::lp {
namespace {

TEST(LpModel, BasicAccounting) {
  Model m;
  const int x = m.add_var(0, 5, 2.0);
  const int y = m.add_var(-1, 1, -3.0);
  EXPECT_EQ(m.num_vars(), 2);
  m.add_row(Sense::LE, 4.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_EQ(m.obj(x), 2.0);
  EXPECT_EQ(m.lb(y), -1.0);
}

TEST(LpModel, RejectsInvertedBounds) {
  Model m;
  EXPECT_THROW(m.add_var(2, 1, 0), Error);
}

TEST(LpModel, RejectsUnknownVarInRow) {
  Model m;
  m.add_var(0, 1, 0);
  EXPECT_THROW(m.add_row(Sense::LE, 0, {{5, 1.0}}), Error);
}

TEST(LpModel, MaxViolation) {
  Model m;
  const int x = m.add_var(0, 1, 0);
  m.add_row(Sense::LE, 0.5, {{x, 1.0}});
  EXPECT_DOUBLE_EQ(m.max_violation({0.2}), 0.0);
  EXPECT_NEAR(m.max_violation({0.9}), 0.4, 1e-12);
  EXPECT_NEAR(m.max_violation({-0.3}), 0.3, 1e-12);
}

TEST(Simplex, TrivialNoConstraints) {
  Model m;
  m.add_var(1, 4, 2.0);   // min at lb
  m.add_var(-3, 7, -1.0); // min at ub
  m.add_var(-2, 2, 0.0);
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_DOUBLE_EQ(r.x[0], 1.0);
  EXPECT_DOUBLE_EQ(r.x[1], 7.0);
  EXPECT_DOUBLE_EQ(r.objective, 2.0 - 7.0);
}

TEST(Simplex, TrivialUnboundedBelow) {
  Model m;
  m.add_var(-kInf, kInf, 1.0);
  EXPECT_EQ(solve(m).status, Status::Unbounded);
}

TEST(Simplex, SimpleTwoVar) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
  // Optimum at (2, 2): obj -6.
  Model m;
  const int x = m.add_var(0, 3, -1.0);
  const int y = m.add_var(0, 2, -2.0);
  m.add_row(Sense::LE, 4.0, {{x, 1.0}, {y, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-8);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
  EXPECT_NEAR(r.x[y], 2.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 3y  s.t. x + y == 5, 0 <= x <= 4, 0 <= y <= 10 -> (4, 1), obj 7.
  Model m;
  const int x = m.add_var(0, 4, 1.0);
  const int y = m.add_var(0, 10, 3.0);
  m.add_row(Sense::EQ, 5.0, {{x, 1.0}, {y, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 7.0, 1e-8);
}

TEST(Simplex, GreaterEqual) {
  // min 2x + y  s.t. x + y >= 3, x,y in [0, 10] -> (0, 3), obj 3.
  Model m;
  const int x = m.add_var(0, 10, 2.0);
  const int y = m.add_var(0, 10, 1.0);
  m.add_row(Sense::GE, 3.0, {{x, 1.0}, {y, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-8);
  EXPECT_NEAR(r.x[y], 3.0, 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  Model m;
  const int x = m.add_var(0, 1, 0.0);
  m.add_row(Sense::GE, 5.0, {{x, 1.0}});
  EXPECT_EQ(solve(m).status, Status::Infeasible);
}

TEST(Simplex, InfeasibleEqualitySystem) {
  Model m;
  const int x = m.add_var(0, 10, 0.0);
  const int y = m.add_var(0, 10, 0.0);
  m.add_row(Sense::EQ, 4.0, {{x, 1.0}, {y, 1.0}});
  m.add_row(Sense::EQ, 9.0, {{x, 1.0}, {y, 1.0}});
  EXPECT_EQ(solve(m).status, Status::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  // min -x  s.t. x - y <= 1, x,y >= 0 unbounded above along x == y + 1.
  Model m;
  const int x = m.add_var(0, kInf, -1.0);
  const int y = m.add_var(0, kInf, 0.0);
  m.add_row(Sense::LE, 1.0, {{x, 1.0}, {y, -1.0}});
  EXPECT_EQ(solve(m).status, Status::Unbounded);
}

TEST(Simplex, NegativeRhsGe) {
  // min x s.t. -x <= -2  (x >= 2), x in [0, 10] -> 2.
  Model m;
  const int x = m.add_var(0, 10, 1.0);
  m.add_row(Sense::LE, -2.0, {{x, -1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
}

TEST(Simplex, FreeVariable) {
  // min x^+ style: free var with equality pinning: x + y == 0, min y,
  // x free in [-inf, inf], y in [-2, 2] -> y = -2, x = 2.
  Model m;
  const int x = m.add_var(-kInf, kInf, 0.0);
  const int y = m.add_var(-2, 2, 1.0);
  m.add_row(Sense::EQ, 0.0, {{x, 1.0}, {y, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_NEAR(r.x[y], -2.0, 1e-8);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
}

TEST(Simplex, DualsMatchObjectiveOnEqualities) {
  // For an equality-constrained LP with interior bounds, strong duality:
  // obj == y' b when no variable sits strictly at a finite bound with
  // nonzero reduced cost. Use a transportation-like instance.
  Model m;
  const int a = m.add_var(0, 10, 2.0);
  const int b = m.add_var(0, 10, 3.0);
  m.add_row(Sense::EQ, 4.0, {{a, 1.0}, {b, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  ASSERT_EQ(r.duals.size(), 1u);
  EXPECT_NEAR(r.objective, 8.0, 1e-8);
  EXPECT_NEAR(r.duals[0], 2.0, 1e-8);  // marginal cost of one more unit
}

// --- warm-basis re-solves (dual simplex) ------------------------------------
// Costs and bounds below are small integers, so every pivot is exact in
// binary floating point and warm-vs-cold comparisons can demand bit-for-bit
// equality, not just tolerance.

TEST(SimplexWarm, BoundTighteningResolvesInFewIterations) {
  // min -x - 2y  s.t. x + y <= 4, x in [0,3], y in [0,2] -> (2,2), obj -6.
  Model m;
  const int x = m.add_var(0, 3, -1.0);
  const int y = m.add_var(0, 2, -2.0);
  m.add_row(Sense::LE, 4.0, {{x, 1.0}, {y, 1.0}});
  const Result cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_FALSE(cold.basis.empty());

  // Tighten the basic variable's upper bound past the old optimum (x sits
  // basic at 2 with y at its bound): the parent basis stays dual-feasible
  // but turns primal-infeasible, so the dual simplex repairs it in O(1)
  // pivots instead of a cold phase 1 + phase 2.
  m.set_bounds(x, 0.0, 1.0);
  const Result warm = solve(m, {}, &cold.basis);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_LE(warm.iterations, 3);
  EXPECT_GE(warm.dual_iterations, 1);

  const Result recold = solve(m);
  ASSERT_EQ(recold.status, Status::Optimal);
  EXPECT_FALSE(recold.warm_used);
  // Unique integral vertex (1,2): warm and cold must agree bit-for-bit.
  EXPECT_EQ(warm.objective, recold.objective);
  ASSERT_EQ(warm.x.size(), recold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i) {
    EXPECT_EQ(warm.x[i], recold.x[i]) << "component " << i;
  }
  EXPECT_EQ(warm.objective, -5.0);
}

TEST(SimplexWarm, CutRowExtensionKeepsBasis) {
  // Appended rows after a solve (a root cut loop): the stored basis is for
  // the smaller row set; new slacks enter basic and the re-solve stays warm.
  Model m;
  const int x = m.add_var(0, 4, -1.0);
  const int y = m.add_var(0, 4, -1.0);
  m.add_row(Sense::LE, 6.0, {{x, 1.0}, {y, 1.0}});
  const Result cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  EXPECT_EQ(cold.objective, -6.0);  // any vertex with x + y == 6

  m.add_row(Sense::LE, 5.0, {{x, 1.0}, {y, 1.0}});  // violated cut
  const Result warm = solve(m, {}, &cold.basis);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_used);
  const Result recold = solve(m);
  EXPECT_EQ(warm.objective, recold.objective);
  EXPECT_EQ(warm.objective, -5.0);
}

TEST(SimplexWarm, StaleBasisFallsBackToColdSolve) {
  Model m;
  const int x = m.add_var(0, 3, -1.0);
  m.add_var(0, 2, -2.0);
  m.add_row(Sense::LE, 4.0, {{x, 1.0}});
  Basis stale;
  stale.num_structs = 7;  // from some other model
  stale.basic = {0};
  stale.state = {BasisState::Basic, BasisState::AtLower};
  const Result r = solve(m, {}, &stale);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_FALSE(r.warm_used);
  EXPECT_EQ(r.objective, -7.0);
}

TEST(SimplexWarm, WarmResolveWithoutChangesIsInstant) {
  Model m;
  const int x = m.add_var(0, 5, 1.0);
  const int y = m.add_var(0, 5, 2.0);
  m.add_row(Sense::GE, 4.0, {{x, 1.0}, {y, 1.0}});
  const Result cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  const Result warm = solve(m, {}, &cold.basis);
  ASSERT_EQ(warm.status, Status::Optimal);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_EQ(warm.dual_iterations, 0);  // already primal-feasible: no pivots
  EXPECT_EQ(warm.objective, cold.objective);
}

TEST(SimplexWarm, DegenerateDualResolveTerminates) {
  // Known-degenerate vertex: many redundant rows through (2,0)/(0,2) ties.
  // After tightening, the dual simplex must terminate (anti-cycling) and
  // reproduce the cold objective exactly.
  Model m;
  const int x = m.add_var(0, kInf, -1.0);
  const int y = m.add_var(0, kInf, -1.0);
  for (int k = 1; k <= 12; ++k) {
    m.add_row(Sense::LE, 2.0, {{x, 1.0}, {y, static_cast<double>(k) / 6.0}});
  }
  m.add_row(Sense::LE, 2.0, {{x, 1.0}});
  m.add_row(Sense::LE, 2.0, {{y, 1.0}});
  const Result cold = solve(m);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_FALSE(cold.basis.empty());

  m.set_bounds(x, 0.0, 1.0);
  const Result warm = solve(m, {}, &cold.basis);
  ASSERT_EQ(warm.status, Status::Optimal);
  const Result recold = solve(m);
  ASSERT_EQ(recold.status, Status::Optimal);
  EXPECT_EQ(warm.objective, recold.objective);
  EXPECT_LE(m.max_violation(warm.x), 1e-7);
}

TEST(SimplexWarm, RandomBoundTighteningsMatchColdExactly) {
  // Property: on integral assignment-style LPs, warm re-solves after a bound
  // fix (the branch & bound step) must match the cold solve bit-for-bit.
  Rng rng(20240807u);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4;
    Model m;
    std::vector<int> vars;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        vars.push_back(
            m.add_var(0, 1, static_cast<double>(rng.uniform_int(0, 16))));
      }
    }
    for (int i = 0; i < n; ++i) {
      std::vector<RowEntry> row_i, col_i;
      for (int j = 0; j < n; ++j) {
        row_i.push_back({vars[static_cast<std::size_t>(i * n + j)], 1.0});
        col_i.push_back({vars[static_cast<std::size_t>(j * n + i)], 1.0});
      }
      m.add_row(Sense::EQ, 1.0, row_i);
      m.add_row(Sense::EQ, 1.0, col_i);
    }
    const Result root = solve(m);
    ASSERT_EQ(root.status, Status::Optimal);
    // Fix one variable to each side, as branching does.
    const int bv = vars[rng.uniform_int(0, static_cast<int>(vars.size()) - 1)];
    for (double fixed : {0.0, 1.0}) {
      m.set_bounds(bv, fixed, fixed);
      const Result warm = solve(m, {}, &root.basis);
      const Result cold = solve(m);
      ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
      if (cold.status == Status::Optimal) {
        EXPECT_EQ(warm.objective, cold.objective) << "trial " << trial;
      }
      m.set_bounds(bv, 0.0, 1.0);
    }
  }
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  Model m;
  const int x = m.add_var(0, kInf, -1.0);
  const int y = m.add_var(0, kInf, -1.0);
  for (int k = 1; k <= 12; ++k) {
    m.add_row(Sense::LE, 2.0, {{x, 1.0}, {y, static_cast<double>(k) / 6.0}});
  }
  m.add_row(Sense::LE, 2.0, {{x, 1.0}});
  m.add_row(Sense::LE, 2.0, {{y, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  EXPECT_LE(m.max_violation(r.x), 1e-7);
}

// ---------------------------------------------------------------------------
// Property: assignment-problem LP relaxations are integral; simplex optimum
// must equal the best permutation found by brute force.
// ---------------------------------------------------------------------------
class AssignmentLp : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentLp, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_int(0, 2));  // 3..5
    std::vector<std::vector<double>> c(static_cast<std::size_t>(n),
                                       std::vector<double>(static_cast<std::size_t>(n)));
    for (auto& row : c) {
      for (double& v : row) v = rng.uniform_real(0.0, 10.0);
    }
    Model m;
    std::vector<std::vector<int>> x(static_cast<std::size_t>(n),
                                    std::vector<int>(static_cast<std::size_t>(n)));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            m.add_var(0, 1, c[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      }
    }
    for (int i = 0; i < n; ++i) {
      std::vector<RowEntry> row_i, col_i;
      for (int j = 0; j < n; ++j) {
        row_i.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
        col_i.push_back({x[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1.0});
      }
      m.add_row(Sense::EQ, 1.0, row_i);
      m.add_row(Sense::EQ, 1.0, col_i);
    }
    const Result r = solve(m);
    ASSERT_EQ(r.status, Status::Optimal);

    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e300;
    do {
      double s = 0;
      for (int i = 0; i < n; ++i) {
        s += c[static_cast<std::size_t>(i)][static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
      }
      best = std::min(best, s);
    } while (std::next_permutation(perm.begin(), perm.end()));

    EXPECT_NEAR(r.objective, best, 1e-6) << "n=" << n << " trial=" << trial;
    EXPECT_LE(m.max_violation(r.x), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentLp, ::testing::Range(1, 9));

// Property: random LE-constrained LPs — solution feasible and no sampled
// feasible point beats it.
class RandomLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp, OptimalBeatsSampledPoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977u);
  for (int trial = 0; trial < 6; ++trial) {
    const int nv = 4 + static_cast<int>(rng.uniform_int(0, 4));
    const int nc = 3 + static_cast<int>(rng.uniform_int(0, 4));
    Model m;
    for (int v = 0; v < nv; ++v) m.add_var(0.0, 5.0, rng.uniform_real(-3, 3));
    for (int r = 0; r < nc; ++r) {
      std::vector<RowEntry> row;
      for (int v = 0; v < nv; ++v) {
        if (rng.chance(0.6)) row.push_back({v, rng.uniform_real(0.1, 2.0)});
      }
      if (row.empty()) row.push_back({0, 1.0});
      m.add_row(Sense::LE, rng.uniform_real(2.0, 12.0), std::move(row));
    }
    const Result res = solve(m);
    ASSERT_EQ(res.status, Status::Optimal);  // x == 0 is always feasible here
    ASSERT_LE(m.max_violation(res.x), 1e-7);
    for (int s = 0; s < 200; ++s) {
      std::vector<double> z(static_cast<std::size_t>(nv));
      for (double& v : z) v = rng.uniform_real(0.0, 5.0);
      if (m.max_violation(z) <= 0.0) {
        ASSERT_GE(m.objective_value(z), res.objective - 1e-7);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLp, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Dual certificate property: the exported duals must reconstruct the optimum.
// This is the identity verify::certify_rap leans on — evaluate it here with
// independent arithmetic on every class of LP the solver emits duals for.
// ---------------------------------------------------------------------------

/// Lagrangian box bound b'y + sum_j min(d_j lb_j, d_j ub_j), d = c - A'y,
/// with duals clamped into the valid cone per row sense first (min-problem:
/// LE rows need y <= 0, GE rows y >= 0). At an optimal basis the bound
/// equals the primal objective exactly (strong duality + complementary
/// slackness); clamping is a no-op there and only guards noisy duals.
double dual_bound(const Model& m, const Result& r) {
  std::vector<double> d(static_cast<std::size_t>(m.num_vars()));
  for (int j = 0; j < m.num_vars(); ++j) {
    d[static_cast<std::size_t>(j)] = m.obj(j);
  }
  double bound = 0.0;
  for (int i = 0; i < m.num_rows(); ++i) {
    const Row& row = m.row(i);
    double y = r.duals[static_cast<std::size_t>(i)];
    if (row.sense == Sense::LE) y = std::min(y, 0.0);
    if (row.sense == Sense::GE) y = std::max(y, 0.0);
    bound += y * row.rhs;
    for (const RowEntry& e : row.entries) {
      d[static_cast<std::size_t>(e.var)] -= y * e.coef;
    }
  }
  for (int j = 0; j < m.num_vars(); ++j) {
    const double dj = d[static_cast<std::size_t>(j)];
    bound += std::min(dj * m.lb(j), dj * m.ub(j));
  }
  return bound;
}

class DualCertificate : public ::testing::TestWithParam<int> {};

TEST_P(DualCertificate, BoundMatchesObjectiveAtOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131u + 7u);
  for (int trial = 0; trial < 6; ++trial) {
    Model m;
    const int nv = 3 + static_cast<int>(rng.uniform_int(0, 4));
    for (int v = 0; v < nv; ++v) {
      m.add_var(0.0, rng.uniform_real(1.0, 6.0), rng.uniform_real(-4, 4));
    }
    const int nc = 2 + static_cast<int>(rng.uniform_int(0, 4));
    for (int r = 0; r < nc; ++r) {
      std::vector<RowEntry> row;
      for (int v = 0; v < nv; ++v) {
        if (rng.chance(0.7)) row.push_back({v, rng.uniform_real(-1.5, 2.0)});
      }
      if (row.empty()) row.push_back({0, 1.0});
      const int pick = static_cast<int>(rng.uniform_int(0, 2));
      const Sense sense =
          pick == 0 ? Sense::LE : (pick == 1 ? Sense::GE : Sense::EQ);
      // Keep the row satisfiable at x == midpoint to avoid mass infeasibility.
      double mid = 0.0;
      for (const RowEntry& e : row) mid += e.coef * m.ub(e.var) * 0.5;
      const double slack = rng.uniform_real(0.0, 3.0);
      const double rhs = sense == Sense::GE ? mid - slack
                         : sense == Sense::LE ? mid + slack
                                              : mid;
      m.add_row(sense, rhs, std::move(row));
    }
    const Result r = solve(m);
    if (r.status != Status::Optimal) continue;  // infeasible draws are fine
    ASSERT_EQ(r.duals.size(), static_cast<std::size_t>(m.num_rows()));
    const double scale = std::max(1.0, std::abs(r.objective));
    EXPECT_NEAR(dual_bound(m, r), r.objective, 1e-6 * scale)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualCertificate, ::testing::Range(1, 9));

TEST(DualCertificate, NoisyDualsStayValidLowerBound) {
  // Perturbed duals must still give a *lower* bound after cone clamping —
  // this is what makes the certifier robust to solver round-off.
  Rng rng(424242u);
  Model m;
  const int x = m.add_var(0, 3, -1.0);
  const int y = m.add_var(0, 2, -2.0);
  m.add_row(Sense::LE, 4.0, {{x, 1.0}, {y, 1.0}});
  const Result r = solve(m);
  ASSERT_EQ(r.status, Status::Optimal);
  for (int trial = 0; trial < 50; ++trial) {
    Result noisy = r;
    for (double& d : noisy.duals) d += rng.uniform_real(-0.5, 0.5);
    EXPECT_LE(dual_bound(m, noisy), r.objective + 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mth::lp
