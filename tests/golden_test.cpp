// Golden regression test: full flow on the two smallest bundled testcases
// against checked-in golden metrics. Any change to synthesis, placement,
// clustering, the ILP, legalization or finalize that moves a metric shows up
// here as an exact diff — the determinism contract makes exact integer
// comparison the right tolerance for Dbu metrics.
//
// Regenerate after an intentional quality change with
//   MTH_GOLDEN_UPDATE=1 ./golden_test
// and commit the rewritten tests/golden/flow_metrics.json.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mth/flows/flow.hpp"

namespace mth {
namespace {

const char* kGoldenFile = MTH_GOLDEN_DIR "/flow_metrics.json";
const char* kCases[] = {"aes_400", "aes_360"};  // two smallest by num_cells

flows::FlowOptions golden_options() {
  flows::FlowOptions opt;
  opt.scale = 0.04;
  // Machine-independence: the ILP deadline is wall-clock, so a loaded host
  // could otherwise return a different (still feasible) incumbent. With the
  // deadline out of the way termination is by gap/node count — deterministic.
  opt.rap.ilp.time_limit_s = 1e9;
  // Grade every stage with the independent oracle while we're at it.
  opt.verify = true;
  return opt;
}

/// Flat JSON object {"case.flow.metric": value, ...} — written and parsed
/// here so the golden file needs no JSON library.
using Metrics = std::map<std::string, long long>;

Metrics collect(const std::string& name) {
  Metrics m;
  const flows::FlowOptions opt = golden_options();
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name(name), opt);
  m[name + ".prepare.n_min_pairs"] = pc.n_min_pairs;
  m[name + ".prepare.minority_cells"] = pc.minority_cells;
  for (const flows::FlowId id :
       {flows::FlowId::F2, flows::FlowId::F3, flows::FlowId::F4,
        flows::FlowId::F5}) {
    const flows::FlowResult r = flows::run_flow(pc, id, opt, false, false).result;
    const std::string key = name + "." + flows::to_string(id);
    m[key + ".displacement"] = r.displacement;
    m[key + ".hpwl"] = r.hpwl;
    if (id == flows::FlowId::F4 || id == flows::FlowId::F5) {
      m[key + ".num_clusters"] = r.num_clusters;
    }
  }
  return m;
}

Metrics read_golden() {
  std::ifstream in(kGoldenFile);
  EXPECT_TRUE(in.good()) << "missing golden file " << kGoldenFile
                         << " (regenerate with MTH_GOLDEN_UPDATE=1)";
  Metrics m;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t k0 = line.find('"');
    if (k0 == std::string::npos) continue;  // braces / blank lines
    const std::size_t k1 = line.find('"', k0 + 1);
    const std::size_t colon = line.find(':', k1);
    if (k1 == std::string::npos || colon == std::string::npos) continue;
    m[line.substr(k0 + 1, k1 - k0 - 1)] =
        std::stoll(line.substr(colon + 1));
  }
  return m;
}

void write_golden(const Metrics& m) {
  std::ofstream out(kGoldenFile);
  ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
  out << "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : m) {
    out << "  \"" << key << "\": " << value
        << (++i == m.size() ? "\n" : ",\n");
  }
  out << "}\n";
}

TEST(Golden, FlowMetricsMatchGolden) {
  Metrics actual;
  for (const char* name : kCases) {
    const Metrics m = collect(name);
    actual.insert(m.begin(), m.end());
  }
  if (const char* u = std::getenv("MTH_GOLDEN_UPDATE"); u && *u == '1') {
    write_golden(actual);
    GTEST_SKIP() << "golden file regenerated: " << kGoldenFile;
  }
  const Metrics golden = read_golden();
  ASSERT_FALSE(golden.empty());
  // Exact comparison both ways: a vanished key is as much a regression as a
  // changed value.
  for (const auto& [key, value] : golden) {
    const auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "golden key not produced: " << key;
    EXPECT_EQ(it->second, value) << "metric drifted: " << key;
  }
  for (const auto& [key, value] : actual) {
    EXPECT_TRUE(golden.count(key)) << "new metric missing from golden (" << key
                                   << " = " << value
                                   << "); regenerate the golden file";
  }
}

}  // namespace
}  // namespace mth
