// 2-D k-means tests: paper-style grid seeding, Lloyd convergence,
// non-empty-cluster guarantee, determinism, 1-D wrapper.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "mth/cluster/kmeans.hpp"
#include "mth/util/error.hpp"
#include "mth/util/rng.hpp"

namespace mth::cluster {
namespace {

std::vector<Point> grid_points(int nx, int ny, Dbu pitch) {
  std::vector<Point> pts;
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) pts.push_back({i * pitch, j * pitch});
  }
  return pts;
}

TEST(GridSeeds, CountAndCoverage) {
  const auto pts = grid_points(10, 10, 100);
  for (int k : {1, 3, 7, 16, 30}) {
    const auto seeds = grid_seeds(pts, k);
    ASSERT_EQ(seeds.size(), static_cast<std::size_t>(k));
    for (const auto& s : seeds) {
      EXPECT_GE(s.first, 0.0);
      EXPECT_LE(s.first, 900.0);
      EXPECT_GE(s.second, 0.0);
      EXPECT_LE(s.second, 900.0);
    }
  }
}

TEST(GridSeeds, OuterPointsDropped) {
  // k = 5 -> p = 3, 9 grid points, the 4 outermost (corner) points dropped
  // first: all surviving seeds are nearer the bbox center than any dropped
  // corner.
  const auto pts = grid_points(7, 7, 60);
  const auto seeds = grid_seeds(pts, 5);
  const double cx = 180, cy = 180;
  for (const auto& s : seeds) {
    const double d2 = (s.first - cx) * (s.first - cx) + (s.second - cy) * (s.second - cy);
    // Corners of the 3x3 seed grid sit at distance^2 = 2*(120)^2 = 28800.
    EXPECT_LT(d2, 28800.0 + 1e-6);
  }
}

TEST(GridSeeds, DistinctSeeds) {
  const auto pts = grid_points(8, 8, 50);
  const auto seeds = grid_seeds(pts, 9);
  std::set<std::pair<double, double>> uniq(seeds.begin(), seeds.end());
  EXPECT_EQ(uniq.size(), seeds.size());
}

TEST(Kmeans, SinglePointSingleCluster) {
  const std::vector<Point> pts{{5, 7}};
  const auto r = kmeans_2d(pts, 1);
  ASSERT_EQ(r.k(), 1);
  EXPECT_EQ(r.assignment[0], 0);
  EXPECT_DOUBLE_EQ(r.centroids[0].first, 5.0);
  EXPECT_DOUBLE_EQ(r.centroids[0].second, 7.0);
}

TEST(Kmeans, KEqualsN) {
  const auto pts = grid_points(3, 3, 1000);
  const auto r = kmeans_2d(pts, 9);
  std::set<int> used(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(used.size(), 9u);  // every point its own cluster
}

TEST(Kmeans, RejectsBadK) {
  const auto pts = grid_points(2, 2, 10);
  EXPECT_THROW(kmeans_2d(pts, 0), Error);
  EXPECT_THROW(kmeans_2d(pts, 5), Error);
  EXPECT_THROW(kmeans_2d({}, 1), Error);
}

TEST(Kmeans, SeparatedBlobsFoundExactly) {
  // Two far-apart blobs, k=2: every blob maps to one cluster.
  std::vector<Point> pts;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform_int(0, 100), rng.uniform_int(0, 100)});
  }
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform_int(100000, 100100), rng.uniform_int(100000, 100100)});
  }
  const auto r = kmeans_2d(pts, 2);
  const int c0 = r.assignment[0];
  for (int i = 0; i < 40; ++i) ASSERT_EQ(r.assignment[static_cast<std::size_t>(i)], c0);
  const int c1 = r.assignment[40];
  ASSERT_NE(c0, c1);
  for (int i = 40; i < 80; ++i) ASSERT_EQ(r.assignment[static_cast<std::size_t>(i)], c1);
}

TEST(Kmeans, AllClustersNonEmpty) {
  Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform_int(0, 10000), rng.uniform_int(0, 10000)});
  }
  for (int k : {2, 10, 37, 100, 250}) {
    const auto r = kmeans_2d(pts, k);
    std::vector<int> count(static_cast<std::size_t>(k), 0);
    for (int a : r.assignment) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, k);
      ++count[static_cast<std::size_t>(a)];
    }
    for (int c = 0; c < k; ++c) {
      EXPECT_GT(count[static_cast<std::size_t>(c)], 0) << "k=" << k << " c=" << c;
    }
  }
}

TEST(Kmeans, Deterministic) {
  Rng rng(21);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform_int(0, 5000), rng.uniform_int(0, 5000)});
  }
  const auto a = kmeans_2d(pts, 25);
  const auto b = kmeans_2d(pts, 25);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(Kmeans, BitIdenticalAcrossThreadCounts) {
  // Parallel nearest-centroid with ordered partial-sum merges: assignment
  // AND centroids (doubles) must match the serial run exactly for every
  // thread count. Sized above one auto-chunk so real fan-out happens.
  Rng rng(77);
  std::vector<Point> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back({rng.uniform_int(0, 200000), rng.uniform_int(0, 200000)});
  }
  KMeansOptions serial;
  serial.exec.num_threads = 1;
  const auto ref = kmeans_2d(pts, 160, serial);
  for (int threads : {2, 8}) {
    KMeansOptions opt;
    opt.exec.num_threads = threads;
    const auto r = kmeans_2d(pts, 160, opt);
    EXPECT_EQ(r.assignment, ref.assignment) << "threads=" << threads;
    EXPECT_EQ(r.centroids, ref.centroids) << "threads=" << threads;
    EXPECT_EQ(r.iterations, ref.iterations) << "threads=" << threads;
  }
}

TEST(Kmeans1d, BitIdenticalAcrossThreadCounts) {
  Rng rng(79);
  std::vector<Dbu> vals;
  for (int i = 0; i < 3000; ++i) vals.push_back(rng.uniform_int(0, 500000));
  KMeansOptions serial;
  serial.exec.num_threads = 1;
  const auto ref = kmeans_1d(vals, 40, serial);
  for (int threads : {2, 8}) {
    KMeansOptions opt;
    opt.exec.num_threads = threads;
    const auto r = kmeans_1d(vals, 40, opt);
    EXPECT_EQ(r.assignment, ref.assignment) << "threads=" << threads;
    EXPECT_EQ(r.centroids, ref.centroids) << "threads=" << threads;
  }
}

TEST(Kmeans, AssignmentIsNearestCentroid) {
  Rng rng(31);
  std::vector<Point> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.uniform_int(0, 20000), rng.uniform_int(0, 20000)});
  }
  const auto r = kmeans_2d(pts, 20);
  // After convergence each point's cluster is (near-)nearest; verify the
  // bucket-grid search against brute force.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    double best = 1e300;
    int best_c = -1;
    for (int c = 0; c < r.k(); ++c) {
      const double dx = r.centroids[static_cast<std::size_t>(c)].first - pts[i].x;
      const double dy = r.centroids[static_cast<std::size_t>(c)].second - pts[i].y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    const auto ac = static_cast<std::size_t>(r.assignment[i]);
    const double dx = r.centroids[ac].first - pts[i].x;
    const double dy = r.centroids[ac].second - pts[i].y;
    // Allow ties and the one-step lag of Lloyd (assignment preceded the last
    // centroid update).
    EXPECT_LE(dx * dx + dy * dy, best * 1.5 + 1e-6);
    ASSERT_GE(best_c, 0);
  }
}

TEST(Kmeans1d, ClustersSortedValues) {
  const std::vector<Dbu> vals{0, 1, 2, 1000, 1001, 1002, 5000, 5001};
  const auto r = kmeans_1d(vals, 3);
  ASSERT_EQ(r.k(), 3);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[1], r.assignment[2]);
  EXPECT_EQ(r.assignment[3], r.assignment[4]);
  EXPECT_EQ(r.assignment[6], r.assignment[7]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
  EXPECT_NE(r.assignment[3], r.assignment[6]);
}

TEST(Kmeans, CentroidsInvariantUnderPointPermutation) {
  // Property: the converged centroid *set* must not depend on the order the
  // cells arrive in (grid seeding reads only the bbox; nearest-centroid ties
  // break by centroid index, not point index). Assignments are compared
  // through the permutation; centroids as sorted multisets.
  Rng rng(101);
  std::vector<Point> pts;
  for (int i = 0; i < 600; ++i) {
    pts.push_back({rng.uniform_int(0, 50000), rng.uniform_int(0, 50000)});
  }
  const int k = 24;
  const auto ref = kmeans_2d(pts, k);

  std::vector<std::size_t> perm(pts.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1],
              perm[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<int>(i) - 1))]);
  }
  std::vector<Point> shuffled(pts.size());
  for (std::size_t i = 0; i < perm.size(); ++i) shuffled[i] = pts[perm[i]];
  const auto r = kmeans_2d(shuffled, k);

  auto sorted = [](std::vector<std::pair<double, double>> c) {
    std::sort(c.begin(), c.end());
    return c;
  };
  const auto ca = sorted(ref.centroids);
  const auto cb = sorted(r.centroids);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t c = 0; c < ca.size(); ++c) {
    EXPECT_NEAR(ca[c].first, cb[c].first, 1e-6) << "centroid " << c;
    EXPECT_NEAR(ca[c].second, cb[c].second, 1e-6) << "centroid " << c;
  }
  // Same partition: points co-clustered before must be co-clustered after.
  for (std::size_t i = 0; i < perm.size(); ++i) {
    for (std::size_t j = i + 1; j < perm.size() && j < i + 5; ++j) {
      EXPECT_EQ(ref.assignment[perm[i]] == ref.assignment[perm[j]],
                r.assignment[i] == r.assignment[j]);
    }
  }
}

TEST(Kmeans, EmptyClustersReseededOnClusteredData) {
  // Two tight far-apart blobs with k far above 2: most grid seeds start in
  // dead space between the blobs and go empty on the first assignment; the
  // reseeding rule (move onto the point farthest from its centroid) must
  // leave every cluster non-empty at convergence.
  Rng rng(55);
  std::vector<Point> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.uniform_int(0, 400), rng.uniform_int(0, 400)});
  }
  for (int i = 0; i < 60; ++i) {
    pts.push_back(
        {rng.uniform_int(900000, 900400), rng.uniform_int(900000, 900400)});
  }
  for (int k : {4, 8, 16}) {
    const auto r = kmeans_2d(pts, k);
    std::vector<int> count(static_cast<std::size_t>(k), 0);
    for (int a : r.assignment) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, k);
      ++count[static_cast<std::size_t>(a)];
    }
    for (int c = 0; c < k; ++c) {
      EXPECT_GT(count[static_cast<std::size_t>(c)], 0) << "k=" << k;
    }
  }
}

// Property: increasing k never increases total within-cluster SSE by much
// (monotone-ish quality), and SSE at k == n is 0.
class KmeansSse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KmeansSse, QualityImprovesWithK) {
  Rng rng(GetParam());
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform_int(0, 8000), rng.uniform_int(0, 8000)});
  }
  auto sse = [&](const KMeansResult& r) {
    double s = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const auto& c = r.centroids[static_cast<std::size_t>(r.assignment[i])];
      s += (c.first - pts[i].x) * (c.first - pts[i].x) +
           (c.second - pts[i].y) * (c.second - pts[i].y);
    }
    return s;
  };
  const double s5 = sse(kmeans_2d(pts, 5));
  const double s40 = sse(kmeans_2d(pts, 40));
  const double s200 = sse(kmeans_2d(pts, 200));
  EXPECT_LT(s40, s5);
  EXPECT_NEAR(s200, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmeansSse, ::testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace mth::cluster
