// Report layer tests: table rendering, CSV output, SVG generation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "mth/liberty/asap7.hpp"
#include "mth/report/svg.hpp"
#include "mth/report/table.hpp"

namespace mth::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "23,456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_NE(s.find("Name"), std::string::npos);
  // Every line has the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, SeparatorRendersRule) {
  Table t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // 5 rules: top, under header, separator, bottom... count '+--' lines.
  int rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(Table, RejectsColumnMismatch) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvRoundTrip) {
  Table t({"A", "B"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "A,B\n1,2\n3,4\n");
}

TEST(Svg, RendersCellsAndFences) {
  Design d;
  d.library = liberty::library_ref();
  const Tech& tech = d.library->tech();
  const int inv6 = find_asap7_master(*d.library, CellFunc::Inv, 1,
                                     TrackHeight::H6T, Vt::RVT);
  const int inv7 = find_asap7_master(*d.library, CellFunc::Inv, 2,
                                     TrackHeight::H75T, Vt::RVT);
  d.netlist.add_instance("a", inv6, {0, 0});
  d.netlist.add_instance("b", inv7, {540, 216});
  d.floorplan = Floorplan::make_uniform(Rect{{0, 0}, {2160, 864}}, 2,
                                        tech.row_height_6t, TrackHeight::H6T,
                                        tech.site_width);
  const std::vector<Rect> fences{{{0, 432}, {2160, 864}}};
  const std::string svg = placement_svg(d, fences);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);  // majority blue
  EXPECT_NE(svg.find("#d62728"), std::string::npos);  // minority red
  EXPECT_NE(svg.find("#ffd900"), std::string::npos);  // fence yellow
}

TEST(Svg, WriteFile) {
  const std::string path = "/tmp/mth_report_test.svg";
  write_file(path, "<svg></svg>\n");
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "<svg></svg>\n");
  std::remove(path.c_str());
}

TEST(Svg, WriteFileFailsOnBadPath) {
  EXPECT_THROW(write_file("/nonexistent-dir-xyz/out.svg", "x"), Error);
}

}  // namespace
}  // namespace mth::report
