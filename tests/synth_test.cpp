// Testcase-spec (Table II) and synthetic netlist generator tests.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mth/liberty/asap7.hpp"
#include "mth/synth/generator.hpp"
#include "mth/synth/testcases.hpp"

namespace mth::synth {
namespace {

TEST(Table2, TwentySixTestcases) {
  const auto& specs = table2_specs();
  EXPECT_EQ(specs.size(), 26u);
  std::set<std::string> circuits;
  for (const auto& s : specs) circuits.insert(s.circuit);
  EXPECT_EQ(circuits.size(), 9u);  // nine OpenCores circuits
}

TEST(Table2, SpotCheckPaperRows) {
  const TestcaseSpec& aes = spec_by_name("aes_300");
  EXPECT_EQ(aes.num_cells, 14040);
  EXPECT_NEAR(aes.pct_75t, 28.13, 1e-9);
  EXPECT_EQ(aes.num_nets, 14302);
  const TestcaseSpec& nova = spec_by_name("nova_300");
  EXPECT_EQ(nova.num_cells, 174267);
  EXPECT_EQ(nova.clock_ps, 300);
  const TestcaseSpec& swerv = spec_by_name("swerv_130");
  EXPECT_EQ(swerv.clock_ps, 130);
}

TEST(Table2, UnknownNameAsserts) {
  EXPECT_THROW(spec_by_name("missing_999"), Error);
}

TEST(Table2, TuningSubsetFourteenCoveringAllCircuits) {
  const auto t = tuning_specs();
  EXPECT_EQ(t.size(), 14u);  // paper §IV-B-1
  std::set<std::string> circuits;
  for (const auto& s : t) circuits.insert(s.circuit);
  EXPECT_EQ(circuits.size(), 9u);
}

TEST(Table2, SizeClassesFollowMinorityCount) {
  // Paper §IV-B-3: small < 3000, medium 3000-5000, large > 5000 minority.
  EXPECT_EQ(size_class_of(spec_by_name("aes_400")), SizeClass::Small);
  EXPECT_EQ(size_class_of(spec_by_name("aes_300")), SizeClass::Medium);
  EXPECT_EQ(size_class_of(spec_by_name("ldpc_300")), SizeClass::Large);
  EXPECT_EQ(size_class_of(spec_by_name("nova_300")), SizeClass::Large);
}

class GeneratorTest : public ::testing::Test {
 protected:
  std::shared_ptr<const Library> lib_ = liberty::library_ref();
};

TEST_F(GeneratorTest, CountsMatchSpecAtScale) {
  GeneratorOptions opt;
  opt.scale = 0.05;
  const TestcaseSpec& spec = spec_by_name("aes_300");
  const SynthResult r = generate_testcase(spec, lib_, opt);
  const int expect_cells = static_cast<int>(std::llround(spec.num_cells * 0.05));
  EXPECT_EQ(r.design.netlist.num_instances(), expect_cells);
  const double pct =
      100.0 * r.design.num_minority() / r.design.netlist.num_instances();
  EXPECT_NEAR(pct, spec.pct_75t, 0.5);
  // nets = instances + input ports (incl. clock); port count scales with the
  // spec's net/cell surplus.
  const int expect_ports = std::max(
      1, static_cast<int>(std::llround((spec.num_nets - spec.num_cells) * 0.05)));
  EXPECT_EQ(r.design.netlist.num_nets(), expect_cells + expect_ports);
}

TEST_F(GeneratorTest, NetlistIsStructurallyValid) {
  GeneratorOptions opt;
  opt.scale = 0.04;
  for (const char* name : {"aes_360", "ldpc_350", "des3_290"}) {
    const SynthResult r = generate_testcase(spec_by_name(name), lib_, opt);
    EXPECT_NO_THROW(r.design.netlist.check(*lib_)) << name;
    EXPECT_EQ(r.locality.size(),
              static_cast<std::size_t>(r.design.netlist.num_instances()));
  }
}

TEST_F(GeneratorTest, Deterministic) {
  GeneratorOptions opt;
  opt.scale = 0.03;
  opt.seed = 77;
  const SynthResult a = generate_testcase(spec_by_name("fpu_4000"), lib_, opt);
  const SynthResult b = generate_testcase(spec_by_name("fpu_4000"), lib_, opt);
  ASSERT_EQ(a.design.netlist.num_nets(), b.design.netlist.num_nets());
  for (NetId n = 0; n < a.design.netlist.num_nets(); ++n) {
    ASSERT_EQ(a.design.netlist.net(n).pins, b.design.netlist.net(n).pins);
  }
  for (InstId i = 0; i < a.design.netlist.num_instances(); ++i) {
    ASSERT_EQ(a.design.netlist.instance(i).master,
              b.design.netlist.instance(i).master);
  }
}

TEST_F(GeneratorTest, SeedChangesNetlist) {
  GeneratorOptions a, b;
  a.scale = b.scale = 0.03;
  a.seed = 1;
  b.seed = 2;
  const SynthResult ra = generate_testcase(spec_by_name("fpu_4000"), lib_, a);
  const SynthResult rb = generate_testcase(spec_by_name("fpu_4000"), lib_, b);
  bool differs = false;
  for (InstId i = 0; i < ra.design.netlist.num_instances() && !differs; ++i) {
    differs = ra.design.netlist.instance(i).master !=
              rb.design.netlist.instance(i).master;
  }
  EXPECT_TRUE(differs);
}

TEST_F(GeneratorTest, CombinationalGraphIsAcyclic) {
  GeneratorOptions opt;
  opt.scale = 0.05;
  const SynthResult r = generate_testcase(spec_by_name("des3_210"), lib_, opt);
  const Netlist& nl = r.design.netlist;
  // Kahn over combinational instances (registers/ports are sources).
  const int n = nl.num_instances();
  std::vector<int> pending(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<InstId>> out(static_cast<std::size_t>(n));
  for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
    const Net& net = nl.net(nid);
    if (net.is_clock) continue;
    const PinRef& drv = net.pins[0];
    for (std::size_t p = 1; p < net.pins.size(); ++p) {
      const PinRef& snk = net.pins[p];
      if (snk.is_port()) continue;
      const CellMaster& m = r.design.master_of(snk.inst);
      if (m.func == CellFunc::Dff) continue;  // registers cut the cycle
      if (drv.is_port()) continue;
      if (r.design.master_of(drv.inst).func == CellFunc::Dff) continue;
      out[static_cast<std::size_t>(drv.inst)].push_back(snk.inst);
      ++pending[static_cast<std::size_t>(snk.inst)];
    }
  }
  std::vector<InstId> queue;
  int processed = 0;
  for (InstId i = 0; i < n; ++i) {
    if (r.design.master_of(i).func != CellFunc::Dff &&
        pending[static_cast<std::size_t>(i)] == 0) {
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const InstId u = queue.back();
    queue.pop_back();
    ++processed;
    for (InstId v : out[static_cast<std::size_t>(u)]) {
      if (--pending[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
  }
  int comb = 0;
  for (InstId i = 0; i < n; ++i) {
    comb += r.design.master_of(i).func != CellFunc::Dff;
  }
  EXPECT_EQ(processed, comb) << "cycle through combinational gates";
}

TEST_F(GeneratorTest, SingleClockNetCoversAllRegisters) {
  GeneratorOptions opt;
  opt.scale = 0.04;
  const SynthResult r = generate_testcase(spec_by_name("jpeg_350"), lib_, opt);
  const Netlist& nl = r.design.netlist;
  int clock_nets = 0;
  int ck_pins = 0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).is_clock) {
      ++clock_nets;
      ck_pins = nl.net(n).degree() - 1;
    }
  }
  EXPECT_EQ(clock_nets, 1);
  int dffs = 0;
  for (InstId i = 0; i < nl.num_instances(); ++i) {
    dffs += r.design.master_of(i).func == CellFunc::Dff;
  }
  EXPECT_EQ(ck_pins, dffs);
  EXPECT_GT(dffs, 0);
}

TEST_F(GeneratorTest, FanoutCapped) {
  GeneratorOptions opt;
  opt.scale = 0.05;
  opt.max_fanout = 12;
  const SynthResult r = generate_testcase(spec_by_name("point_200"), lib_, opt);
  for (NetId n = 0; n < r.design.netlist.num_nets(); ++n) {
    const Net& net = r.design.netlist.net(n);
    if (net.is_clock) continue;
    EXPECT_LE(net.degree() - 1, opt.max_fanout + 1)  // +1 for a possible PO tap
        << net.name;
  }
}

TEST_F(GeneratorTest, MinorityCellsAreHighDrive) {
  GeneratorOptions opt;
  opt.scale = 0.06;
  const SynthResult r = generate_testcase(spec_by_name("aes_300"), lib_, opt);
  for (InstId i = 0; i < r.design.netlist.num_instances(); ++i) {
    const CellMaster& m = r.design.master_of(i);
    if (m.track_height == TrackHeight::H75T) {
      EXPECT_GE(m.drive, 2) << "minority cells model high-drive instances";
    }
  }
}

// Parameterized sweep: every Table II spec generates a valid netlist at a
// small scale with matching minority percentage.
class AllSpecs : public ::testing::TestWithParam<int> {};

TEST_P(AllSpecs, GeneratesValidDesign) {
  const TestcaseSpec& spec = table2_specs()[static_cast<std::size_t>(GetParam())];
  GeneratorOptions opt;
  opt.scale = 0.02;
  const SynthResult r = generate_testcase(spec, liberty::library_ref(), opt);
  EXPECT_NO_THROW(r.design.netlist.check(*r.design.library));
  const double pct =
      100.0 * r.design.num_minority() / r.design.netlist.num_instances();
  EXPECT_NEAR(pct, spec.pct_75t, 1.5) << spec.short_name;
}

INSTANTIATE_TEST_SUITE_P(Table2, AllSpecs, ::testing::Range(0, 26));

}  // namespace
}  // namespace mth::synth
