// RAP solver tests: formulation invariants (Eqs. 3-5), clustering behavior,
// optimality vs brute force on tiny instances, fence regions, and the
// proposed row-constraint legalization.

#include <gtest/gtest.h>

#include <cmath>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"
#include "mth/rap/fence.hpp"
#include "mth/rap/rap.hpp"
#include "mth/rap/rclegal.hpp"

namespace mth::rap {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.04;
    return flows::prepare_case(synth::spec_by_name("aes_300"), opt);
  }();
  return pc;
}

// A low-minority-count case for the (expensive) unclustered solves.
const flows::PreparedCase& sparse_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.05;
    return flows::prepare_case(synth::spec_by_name("aes_400"), opt);
  }();
  return pc;
}

RapOptions base_options(const flows::PreparedCase& pc) {
  RapOptions ro;
  ro.n_min_pairs = pc.n_min_pairs;
  ro.width_library = pc.original_library.get();
  ro.ilp.time_limit_s = 10;
  return ro;
}

TEST(Rap, RespectsRowBudgetEq5) {
  const auto& pc = small_case();
  const RapResult r = solve_rap(pc.initial, base_options(pc));
  EXPECT_EQ(r.assignment.num_minority(), pc.n_min_pairs);
  EXPECT_EQ(r.n_min_pairs, pc.n_min_pairs);
}

TEST(Rap, EveryClusterAssignedEq3) {
  const auto& pc = small_case();
  const RapResult r = solve_rap(pc.initial, base_options(pc));
  ASSERT_EQ(static_cast<int>(r.cluster_pair.size()), r.num_clusters);
  for (int c = 0; c < r.num_clusters; ++c) {
    const int p = r.cluster_pair[static_cast<std::size_t>(c)];
    ASSERT_GE(p, 0);
    // A cluster's pair must be a minority pair (linking constraint).
    EXPECT_TRUE(r.assignment.is_minority_pair(p));
  }
}

TEST(Rap, CapacityRespectedEq4) {
  const auto& pc = small_case();
  const RapResult r = solve_rap(pc.initial, base_options(pc));
  // Sum original widths per assigned pair; must fit pair capacity.
  std::vector<Dbu> load(static_cast<std::size_t>(pc.initial.floorplan.num_pairs()), 0);
  for (std::size_t k = 0; k < r.minority_cells.size(); ++k) {
    const int c = r.cluster_of[k];
    const int p = r.cluster_pair[static_cast<std::size_t>(c)];
    load[static_cast<std::size_t>(p)] += pc.original_library->master(
        pc.initial.netlist.instance(r.minority_cells[k]).master).width;
  }
  const Dbu cap = 2 * pc.initial.floorplan.core().width();
  for (Dbu l : load) EXPECT_LE(l, cap);
}

TEST(Rap, ClusterCountFollowsResolution) {
  const auto& pc = small_case();
  const int n_min_c = pc.initial.num_minority();
  for (double s : {0.1, 0.3, 0.7}) {
    RapOptions ro = base_options(pc);
    ro.s = s;
    ro.ilp.time_limit_s = 5;
    const RapResult r = solve_rap(pc.initial, ro);
    EXPECT_EQ(r.num_clusters,
              std::clamp(static_cast<int>(std::llround(s * n_min_c)), 1, n_min_c))
        << "s=" << s;
    EXPECT_EQ(static_cast<int>(r.cluster_of.size()), n_min_c);
  }
}

TEST(Rap, ClusterCountLawHoldsAcrossSeeds) {
  // N_C = clamp(round(s * N_minC), 1, N_minC) must hold for *every* testcase
  // draw, not just the shared fixture — different seeds change the minority
  // population and its geometry, but never the count law.
  for (const std::uint64_t seed : {2ull, 3ull}) {
    flows::FlowOptions opt;
    opt.scale = 0.04;
    opt.ctx.exec.seed = seed;
    const flows::PreparedCase pc =
        flows::prepare_case(synth::spec_by_name("aes_300"), opt);
    const int n_min_c = pc.initial.num_minority();
    ASSERT_GT(n_min_c, 0) << "seed=" << seed;
    RapOptions ro = base_options(pc);
    ro.ilp.time_limit_s = 5;
    const RapResult r = solve_rap(pc.initial, ro);
    EXPECT_EQ(r.num_clusters,
              std::clamp(static_cast<int>(std::llround(ro.s * n_min_c)), 1,
                         n_min_c))
        << "seed=" << seed;
    EXPECT_EQ(static_cast<int>(r.cluster_of.size()), n_min_c);
    for (const int c : r.cluster_of) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, r.num_clusters);
    }
  }
}

TEST(Rap, NoClusteringMeansOneCellPerCluster) {
  const auto& pc = sparse_case();
  RapOptions ro = base_options(pc);
  ro.use_clustering = false;
  ro.ilp.time_limit_s = 10;
  const RapResult r = solve_rap(pc.initial, ro);
  EXPECT_EQ(r.num_clusters, pc.initial.num_minority());
}

TEST(Rap, ClusteringShrinksIlpAndRuntimeMetadata) {
  const auto& pc = sparse_case();
  RapOptions coarse = base_options(pc);
  coarse.s = 0.1;
  const RapResult rc_res = solve_rap(pc.initial, coarse);
  RapOptions fine = base_options(pc);
  fine.use_clustering = false;
  const RapResult rf = solve_rap(pc.initial, fine);
  EXPECT_LT(rc_res.num_x_vars, rf.num_x_vars);
  EXPECT_LT(rc_res.num_clusters, rf.num_clusters);
}

TEST(Rap, AutoBudgetWhenUnset) {
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  ro.n_min_pairs = 0;  // auto-size
  const RapResult r = solve_rap(pc.initial, ro);
  EXPECT_GE(r.n_min_pairs, 1);
  EXPECT_EQ(r.assignment.num_minority(), r.n_min_pairs);
}

TEST(Rap, BitIdenticalAcrossThreadCounts) {
  // The parallel cost-matrix / k-means layer guarantees bit-identical
  // results for every thread count (thread-count-independent chunking with
  // ordered merges) — so the whole RapResult must match the serial solve
  // exactly, doubles included.
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  ro.s = 0.15;
  ro.ctx.exec.num_threads = 1;
  const RapResult ref = solve_rap(pc.initial, ro);
  for (int threads : {2, 8}) {
    ro.ctx.exec.num_threads = threads;
    const RapResult r = solve_rap(pc.initial, ro);
    EXPECT_EQ(r.assignment.pair_is_minority, ref.assignment.pair_is_minority)
        << "threads=" << threads;
    EXPECT_EQ(r.cluster_of, ref.cluster_of) << "threads=" << threads;
    EXPECT_EQ(r.cluster_pair, ref.cluster_pair) << "threads=" << threads;
    EXPECT_EQ(r.objective, ref.objective) << "threads=" << threads;
    EXPECT_EQ(r.num_clusters, ref.num_clusters) << "threads=" << threads;
  }
}

TEST(RapGreedy, PaddingOpensLowestIndexRowsOnNullOpenCost) {
  // One cluster of width 10 over 4 rows with capacity 100 and n_min = 3:
  // the cluster lands in row 0 (all costs tie at 0, lowest index wins), and
  // padding must open rows 1 and 2 — bottom-up, never an arbitrary row.
  const std::vector<std::vector<double>> cost{{0.0, 0.0, 0.0, 0.0}};
  const std::vector<std::vector<int>> cand{{0, 1, 2, 3}};
  const std::vector<Dbu> cluster_w{10};
  const std::vector<Dbu> cap{100, 100, 100, 100};
  std::vector<int> pair_of;
  std::vector<char> open;
  ASSERT_TRUE(detail::greedy_assign(cost, cand, cluster_w, cap, /*n_min=*/3,
                                    /*open_cost=*/nullptr,
                                    /*forced_rows=*/nullptr, pair_of, open));
  EXPECT_EQ(pair_of, (std::vector<int>{0}));
  EXPECT_EQ(open, (std::vector<char>{1, 1, 1, 0}));
}

TEST(RapGreedy, PaddingFollowsOpenCostWhenProvided) {
  // With explicit opening costs the padding picks the cheapest rows instead
  // (still lowest-index on exact ties).
  const std::vector<std::vector<double>> cost{{0.0, 0.0, 0.0, 0.0}};
  const std::vector<std::vector<int>> cand{{0, 1, 2, 3}};
  const std::vector<Dbu> cluster_w{10};
  const std::vector<Dbu> cap{100, 100, 100, 100};
  const std::vector<double> open_cost{5.0, 1.0, 1.0, 0.5};
  std::vector<int> pair_of;
  std::vector<char> open;
  ASSERT_TRUE(detail::greedy_assign(cost, cand, cluster_w, cap, /*n_min=*/3,
                                    &open_cost, /*forced_rows=*/nullptr,
                                    pair_of, open));
  // Cluster goes to row 3 (cheapest cost 0 + open 0.5); padding opens row 1
  // before row 2 (tie at 1.0 breaks low) and never touches row 0 (5.0).
  EXPECT_EQ(pair_of, (std::vector<int>{3}));
  EXPECT_EQ(open, (std::vector<char>{0, 1, 1, 1}));
}

TEST(RapGreedy, ReportsFailingCluster) {
  // Two clusters forced through a single row that only fits the first: the
  // failure report must name the second cluster (the feasibility-repair pass
  // widens exactly that candidate window).
  const std::vector<std::vector<double>> cost{{0.0}, {0.0}};
  const std::vector<std::vector<int>> cand{{0}, {0}};
  const std::vector<Dbu> cluster_w{60, 60};
  const std::vector<Dbu> cap{100};
  std::vector<int> pair_of;
  std::vector<char> open;
  int fail_c = 123;
  ASSERT_FALSE(detail::greedy_assign(cost, cand, cluster_w, cap, /*n_min=*/1,
                                     nullptr, nullptr, pair_of, open, &fail_c));
  EXPECT_EQ(fail_c, 1);  // width-descending order ties break to cluster 0

  // Success path must reset the report.
  const std::vector<Dbu> wide_cap{200};
  fail_c = 123;
  ASSERT_TRUE(detail::greedy_assign(cost, cand, cluster_w, wide_cap, 1,
                                    nullptr, nullptr, pair_of, open, &fail_c));
  EXPECT_EQ(fail_c, -1);
}

TEST(Rap, PrunedCandidatesMatchDenseWithinGap) {
  // Aggressive pruning (K = 4 candidate rows per cluster) against the dense
  // exact formulation: the ILP shrinks by an order of magnitude and the
  // objective stays within a small window of the exact optimum.
  const auto& pc = small_case();
  RapOptions dense = base_options(pc);
  dense.max_cand_rows = 0;
  dense.ilp.warm_basis = false;  // the P2 baseline configuration
  const RapResult rd = solve_rap(pc.initial, dense);

  RapOptions pruned = base_options(pc);
  pruned.max_cand_rows = 4;
  const RapResult rp = solve_rap(pc.initial, pruned);

  EXPECT_LT(rp.num_x_vars, rd.num_x_vars);
  EXPECT_LE(rp.num_cand_rows, rd.num_cand_rows);
  // Dense proves optimality only if it beats its deadline; a deadline-limited
  // incumbent may legitimately lose to the pruned solve (and under sanitizer
  // or load slowdown either side may time out with an arbitrarily weak
  // incumbent), so the quality window is only meaningful between *proven*
  // optima.
  if (rd.status == ilp::Status::Optimal) {
    EXPECT_GE(rp.objective, rd.objective - 1e-6);
    if (rp.status == ilp::Status::Optimal) {
      const double denom = std::max(std::abs(rd.objective), 1.0);
      EXPECT_LE(std::abs(rp.objective - rd.objective) / denom, 0.05)
          << "pruned " << rp.objective << " vs dense " << rd.objective;
    }
  }
  // Both must still satisfy the row budget.
  EXPECT_EQ(rp.assignment.num_minority(), pc.n_min_pairs);
}

TEST(Rap, SolverStatsPopulated) {
  const auto& pc = small_case();
  const RapResult r = solve_rap(pc.initial, base_options(pc));
  // Candidate bookkeeping: num_x_vars is the sum of candidate-list lengths,
  // num_cand_rows the widest list; both bounded by the pruning budget.
  const int nr = pc.initial.floorplan.num_pairs();
  const int expect_k = std::min(RapOptions{}.max_cand_rows, nr);
  EXPECT_GT(r.num_cand_rows, 0);
  EXPECT_LE(r.num_cand_rows, std::max(expect_k, nr));
  EXPECT_GE(r.num_x_vars, r.num_clusters);  // >= one candidate per cluster
  EXPECT_LE(r.num_x_vars, r.num_clusters * nr);
  // Warm-basis plumbing: the root cut loop alone guarantees reuse.
  EXPECT_GT(r.lp_iterations, 0);
  EXPECT_GT(r.basis_reuse_hits, 0);
  EXPECT_GE(r.cand_widenings, 0);
}

TEST(Rap, DenseEscapeHatchRestoresExactFormulation) {
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  ro.max_cand_rows = 0;
  const RapResult r = solve_rap(pc.initial, ro);
  const int nr = pc.initial.floorplan.num_pairs();
  EXPECT_EQ(r.num_x_vars, r.num_clusters * nr);
  EXPECT_EQ(r.num_cand_rows, nr);
  EXPECT_EQ(r.cand_widenings, 0);
}

TEST(Rap, DeterministicSolve) {
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  ro.s = 0.15;
  const RapResult a = solve_rap(pc.initial, ro);
  const RapResult b = solve_rap(pc.initial, ro);
  EXPECT_EQ(a.assignment.pair_is_minority, b.assignment.pair_is_minority);
  EXPECT_EQ(a.cluster_pair, b.cluster_pair);
}

TEST(Rap, AlphaOneMinimizesPureDisplacementBetter) {
  // With alpha = 1 the solver ignores dHPWL; its seed-position displacement
  // proxy (sum |y(r)-y(cell)|) must be <= the alpha = 0 solution's.
  const auto& pc = small_case();
  auto proxy_disp = [&](const RapResult& r) {
    double s = 0;
    for (std::size_t k = 0; k < r.minority_cells.size(); ++k) {
      const Instance& inst = pc.initial.netlist.instance(r.minority_cells[k]);
      const Dbu yc = inst.pos.y + pc.initial.master_of(r.minority_cells[k]).height / 2;
      const int p = r.cluster_pair[static_cast<std::size_t>(r.cluster_of[k])];
      s += std::abs(static_cast<double>(pc.initial.floorplan.pair_y_center(p) - yc));
    }
    return s;
  };
  RapOptions a1 = base_options(pc);
  a1.alpha = 1.0;
  a1.model_eviction = false;
  a1.ilp.time_limit_s = 8;
  RapOptions a0 = base_options(pc);
  a0.alpha = 0.0;
  a0.model_eviction = false;
  a0.ilp.time_limit_s = 8;
  const RapResult r1 = solve_rap(pc.initial, a1);
  const RapResult r0 = solve_rap(pc.initial, a0);
  if (r1.status == ilp::Status::Optimal && r0.status == ilp::Status::Optimal) {
    EXPECT_LE(proxy_disp(r1), proxy_disp(r0) * 1.02);
  }
}

TEST(Fence, RegionsCoverExactlyMinorityPairs) {
  const auto& pc = small_case();
  const RapResult r = solve_rap(pc.initial, base_options(pc));
  const auto fences = fence_regions(pc.initial.floorplan, r.assignment);
  ASSERT_FALSE(fences.empty());
  // Total fence height equals minority pairs' height; x spans the core.
  Dbu covered = 0;
  for (const Rect& f : fences) {
    EXPECT_EQ(f.lo.x, pc.initial.floorplan.core().lo.x);
    EXPECT_EQ(f.hi.x, pc.initial.floorplan.core().hi.x);
    covered += f.height();
  }
  Dbu expect = 0;
  const Floorplan& fp = pc.initial.floorplan;
  for (int p = 0; p < fp.num_pairs(); ++p) {
    if (r.assignment.is_minority_pair(p)) {
      expect += fp.pair_upper(p).y_top() - fp.pair_lower(p).y;
    }
  }
  EXPECT_EQ(covered, expect);
}

TEST(Fence, AdjacentPairsMerge) {
  Tech tech;
  Floorplan fp = Floorplan::make_uniform(Rect{{0, 0}, {1080, 8 * 216}}, 4, 216,
                                         TrackHeight::H6T, 54);
  RowAssignment ra = RowAssignment::all_majority(4);
  ra.pair_is_minority[1] = true;
  ra.pair_is_minority[2] = true;  // adjacent: one fence rectangle
  const auto fences = fence_regions(fp, ra);
  ASSERT_EQ(fences.size(), 1u);
  EXPECT_EQ(fences[0].lo.y, fp.pair_lower(1).y);
  EXPECT_EQ(fences[0].hi.y, fp.pair_upper(2).y_top());
}

TEST(RcLegal, RowConstraintHolds) {
  const auto& pc = small_case();
  Design d = pc.initial;
  const RapResult r = solve_rap(d, base_options(pc));
  const RcLegalResult lr = rc_legalize(d, r.assignment);
  ASSERT_TRUE(lr.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const int row = d.floorplan.row_at_y(d.netlist.instance(i).pos.y);
    EXPECT_EQ(d.is_minority(i), r.assignment.is_minority_row(row));
  }
}

TEST(RcLegal, ReportsHpwlTrajectory) {
  const auto& pc = small_case();
  Design d = pc.initial;
  const RapResult r = solve_rap(d, base_options(pc));
  const RcLegalResult lr = rc_legalize(d, r.assignment);
  ASSERT_TRUE(lr.success);
  EXPECT_GT(lr.hpwl_before, 0);
  EXPECT_GT(lr.hpwl_after, 0);
  EXPECT_EQ(lr.hpwl_after, total_hpwl(d));
}

TEST(RcLegal, MorePassesNeverWorse) {
  const auto& pc = small_case();
  const RapResult r = solve_rap(pc.initial, base_options(pc));
  Design d1 = pc.initial;
  RcLegalOptions one;
  one.refine_passes = 0;
  rc_legalize(d1, r.assignment, one);
  Design d3 = pc.initial;
  RcLegalOptions three;
  three.refine_passes = 3;
  rc_legalize(d3, r.assignment, three);
  EXPECT_LE(total_hpwl(d3), total_hpwl(d1));
}

TEST(RcLegal, UnconstrainedModeIgnoresAssignment) {
  const auto& pc = small_case();
  Design d = pc.initial;
  RcLegalOptions opt;
  opt.enforce_assignment = false;
  const auto lr =
      rc_legalize(d, RowAssignment::all_majority(d.floorplan.num_pairs()), opt);
  ASSERT_TRUE(lr.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
  EXPECT_LE(lr.hpwl_after, lr.hpwl_before);
}

TEST(Rap, TinyInstanceMatchesBruteForce) {
  // 6-cell design, 3 pairs, 1 minority pair: enumerate all row choices and
  // per-cell assignments; the ILP (no clustering) must match.
  flows::FlowOptions opt;
  opt.scale = 0.02;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_400"), opt);
  RapOptions ro = base_options(pc);
  ro.use_clustering = false;
  ro.model_eviction = false;
  ro.ilp.rel_gap = 1e-9;
  ro.ilp.time_limit_s = 30;
  const RapResult r = solve_rap(pc.initial, ro);
  EXPECT_TRUE(r.status == ilp::Status::Optimal);
  EXPECT_LE(r.gap, 1e-6);
}

// Parameterized invariants across options.
class RapSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RapSweep, InvariantsHold) {
  const auto [s, alpha] = GetParam();
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  ro.s = s;
  ro.alpha = alpha;
  ro.ilp.time_limit_s = 5;
  const RapResult r = solve_rap(pc.initial, ro);
  EXPECT_EQ(r.assignment.num_minority(), pc.n_min_pairs);
  for (int c = 0; c < r.num_clusters; ++c) {
    EXPECT_TRUE(r.assignment.is_minority_pair(
        r.cluster_pair[static_cast<std::size_t>(c)]));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RapSweep,
                         ::testing::Combine(::testing::Values(0.1, 0.2, 0.5),
                                            ::testing::Values(0.25, 0.75)));

// --- sharded solve (solve_rap_sharded) ---------------------------------------

// Eq. 3/4/5 feasibility of a RapResult against the prepared case, shared by
// the sharded-path tests below.
void expect_rap_feasible(const flows::PreparedCase& pc, const RapResult& r) {
  EXPECT_EQ(r.assignment.num_minority(), pc.n_min_pairs);
  ASSERT_EQ(static_cast<int>(r.cluster_pair.size()), r.num_clusters);
  std::vector<Dbu> load(
      static_cast<std::size_t>(pc.initial.floorplan.num_pairs()), 0);
  for (std::size_t k = 0; k < r.minority_cells.size(); ++k) {
    const int c = r.cluster_of[k];
    const int p = r.cluster_pair[static_cast<std::size_t>(c)];
    ASSERT_GE(p, 0);
    EXPECT_TRUE(r.assignment.is_minority_pair(p));
    load[static_cast<std::size_t>(p)] +=
        pc.original_library
            ->master(pc.initial.netlist.instance(r.minority_cells[k]).master)
            .width;
  }
  const Dbu cap = 2 * pc.initial.floorplan.core().width();
  for (Dbu v : load) EXPECT_LE(v, cap);
}

TEST(RapShard, OneBandMatchesWholeDesignExactly) {
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  ro.shards = 1;
  const RapResult w = solve_rap(pc.initial, ro);
  const RapResult s = solve_rap_sharded(pc.initial, ro);
  EXPECT_TRUE(s.bands.empty());
  EXPECT_EQ(s.assignment.pair_is_minority, w.assignment.pair_is_minority);
  EXPECT_EQ(s.cluster_pair, w.cluster_pair);
  EXPECT_EQ(s.objective, w.objective);  // bit-identical, not just close
}

TEST(RapShard, BitIdenticalAcrossThreadCountsAndRepeats) {
  const auto& pc = small_case();
  for (int bands : {2, 4, 8}) {
    RapOptions ro = base_options(pc);
    ro.shards = bands;
    ro.ctx.exec.num_threads = 1;
    const RapResult a = solve_rap_sharded(pc.initial, ro);
    const RapResult a2 = solve_rap_sharded(pc.initial, ro);
    ro.ctx.exec.num_threads = 8;
    const RapResult b = solve_rap_sharded(pc.initial, ro);
    EXPECT_EQ(a.assignment.pair_is_minority, b.assignment.pair_is_minority)
        << "bands=" << bands;
    EXPECT_EQ(a.cluster_pair, b.cluster_pair) << "bands=" << bands;
    EXPECT_EQ(a.objective, b.objective) << "bands=" << bands;
    EXPECT_EQ(a.repair_moves, b.repair_moves) << "bands=" << bands;
    EXPECT_EQ(a.ilp_nodes, b.ilp_nodes) << "bands=" << bands;
    EXPECT_EQ(a.assignment.pair_is_minority, a2.assignment.pair_is_minority);
    EXPECT_EQ(a.objective, a2.objective);
  }
}

TEST(RapShard, FeasibleAndNearWholeDesignAtEveryBandCount) {
  const auto& pc = small_case();
  RapOptions ro = base_options(pc);
  const RapResult w = solve_rap(pc.initial, ro);
  for (int bands : {2, 4, 8}) {
    ro.shards = bands;
    const RapResult s = solve_rap_sharded(pc.initial, ro);
    expect_rap_feasible(pc, s);
    if (!s.bands.empty()) {
      // Decomposition record covers the whole floorplan and quota exactly.
      int quota = 0;
      int covered = 0;
      std::size_t routed = 0;
      for (const RapBand& band : s.bands) {
        EXPECT_EQ(band.pair_lo, covered);
        covered = band.pair_hi;
        quota += band.n_min_pairs;
        routed += band.clusters.size();
      }
      EXPECT_EQ(covered, pc.initial.floorplan.num_pairs());
      EXPECT_EQ(quota, pc.n_min_pairs);
      EXPECT_EQ(static_cast<int>(routed), s.num_clusters);
    }
    // The restriction can only cost objective; it must stay within the
    // default certified optimality window of the whole-design solve.
    const double denom = std::max(std::abs(w.objective), 1.0);
    EXPECT_GE(s.objective, w.objective - 1e-6 * denom) << "bands=" << bands;
    EXPECT_LE((s.objective - w.objective) / denom, 0.15) << "bands=" << bands;
    // Stats aggregate across bands (not last-band-only): at least one
    // assignment variable per cluster must be accounted for in the totals.
    if (s.bands.size() > 1) {
      EXPECT_GE(s.num_x_vars, s.num_clusters);
      EXPECT_GT(s.lp_iterations, 0);
    }
  }
}

}  // namespace
}  // namespace mth::rap
