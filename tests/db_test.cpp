// Design database tests: tech, library invariants, netlist structure,
// floorplan geometry, metrics (HPWL / displacement / legality).

#include <gtest/gtest.h>

#include <algorithm>

#include "mth/db/design.hpp"
#include "mth/db/incremental_hpwl.hpp"
#include "mth/db/metrics.hpp"
#include "mth/db/rowassign.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/util/rng.hpp"

namespace mth {
namespace {

Design make_tiny_design() {
  // Two instances on a 2-pair uniform floorplan, one net between them.
  Design d;
  d.name = "tiny";
  d.library = liberty::library_ref();
  const Tech& tech = d.library->tech();
  const int inv = find_asap7_master(*d.library, CellFunc::Inv, 1,
                                    TrackHeight::H6T, Vt::RVT);
  const int nand2 = find_asap7_master(*d.library, CellFunc::Nand2, 1,
                                      TrackHeight::H6T, Vt::RVT);
  const InstId a = d.netlist.add_instance("a", inv, {0, 0});
  const InstId b = d.netlist.add_instance("b", nand2, {540, 216});
  const PortId pin = d.netlist.add_port("in", {0, 0}, true);
  const PortId pout = d.netlist.add_port("out", {2000, 800}, false);

  NetId n0 = d.netlist.add_net("n0");
  d.netlist.connect(n0, {kInvalidId, pin});
  d.netlist.connect(n0, {a, 0});
  NetId n1 = d.netlist.add_net("n1");
  d.netlist.connect(n1, {a, d.library->master(inv).output_pin()});
  d.netlist.connect(n1, {b, 0});
  NetId n2 = d.netlist.add_net("n2");
  d.netlist.connect(n2, {b, d.library->master(nand2).output_pin()});
  d.netlist.connect(n2, {kInvalidId, pout});

  d.floorplan = Floorplan::make_uniform(Rect{{0, 0}, {5400, 864}}, 2,
                                        tech.row_height_6t, TrackHeight::H6T,
                                        tech.site_width);
  return d;
}

TEST(Tech, DefaultsAreConsistent) {
  Tech t;
  EXPECT_NO_THROW(t.check());
  EXPECT_EQ(t.row_height(TrackHeight::H6T), 216);
  EXPECT_EQ(t.row_height(TrackHeight::H75T), 270);
  EXPECT_LT(t.row_height_6t, t.row_height_75t);
}

TEST(Tech, CheckRejectsBadHeights) {
  Tech t;
  t.row_height_75t = t.row_height_6t;  // must be strictly taller
  EXPECT_THROW(t.check(), Error);
}

TEST(Netlist, StructureAndCheck) {
  Design d = make_tiny_design();
  EXPECT_EQ(d.netlist.num_instances(), 2);
  EXPECT_EQ(d.netlist.num_nets(), 3);
  EXPECT_EQ(d.netlist.num_ports(), 2);
  EXPECT_NO_THROW(d.check());
}

TEST(Netlist, DriverMustBeFirst) {
  Design d = make_tiny_design();
  NetId bad = d.netlist.add_net("bad");
  // Sink first (instance input pin), driver second.
  d.netlist.connect(bad, {1, 0});
  const int out = d.library->master(d.netlist.instance(0).master).output_pin();
  d.netlist.connect(bad, {0, out});
  EXPECT_THROW(d.netlist.check(*d.library), Error);
}

TEST(Netlist, MultipleDriversRejected) {
  Design d = make_tiny_design();
  NetId bad = d.netlist.add_net("bad2");
  const int out0 = d.library->master(d.netlist.instance(0).master).output_pin();
  const int out1 = d.library->master(d.netlist.instance(1).master).output_pin();
  d.netlist.connect(bad, {0, out0});
  d.netlist.connect(bad, {1, out1});
  EXPECT_THROW(d.netlist.check(*d.library), Error);
}

TEST(Netlist, EmptyNetRejected) {
  Design d = make_tiny_design();
  d.netlist.add_net("empty");
  EXPECT_THROW(d.netlist.check(*d.library), Error);
}

TEST(Netlist, InstUsesReverseIndex) {
  Design d = make_tiny_design();
  const auto& uses = d.netlist.inst_uses();
  ASSERT_EQ(uses.size(), 2u);
  EXPECT_EQ(uses[0].size(), 2u);  // instance a touches n0 and n1
  EXPECT_EQ(uses[1].size(), 2u);  // instance b touches n1 and n2
}

TEST(Netlist, InstUsesInvalidatedByEdits) {
  Design d = make_tiny_design();
  (void)d.netlist.inst_uses();
  const InstId c = d.netlist.add_instance(
      "c", d.netlist.instance(0).master, {1080, 0});
  const auto& uses = d.netlist.inst_uses();
  ASSERT_EQ(uses.size(), 3u);
  EXPECT_TRUE(uses[static_cast<std::size_t>(c)].empty());
}

TEST(Netlist, PinPositionIncludesOffset) {
  Design d = make_tiny_design();
  const Instance& a = d.netlist.instance(0);
  const CellMaster& m = d.library->master(a.master);
  const Point p = d.netlist.pin_position({0, 0}, *d.library);
  EXPECT_EQ(p, a.pos + m.pins[0].offset);
}

TEST(Floorplan, UniformLayout) {
  const Floorplan& fp = make_tiny_design().floorplan;
  EXPECT_EQ(fp.num_rows(), 4);
  EXPECT_EQ(fp.num_pairs(), 2);
  EXPECT_EQ(fp.row(0).y, 0);
  EXPECT_EQ(fp.row(1).y, 216);
  EXPECT_EQ(fp.pair_upper(1).y_top(), 864);
  EXPECT_EQ(fp.pair_y_center(0), 216);
  EXPECT_EQ(fp.sites_per_row(), 100);
}

TEST(Floorplan, RowAtY) {
  const Floorplan& fp = make_tiny_design().floorplan;
  EXPECT_EQ(fp.row_at_y(0), 0);
  EXPECT_EQ(fp.row_at_y(215), 0);
  EXPECT_EQ(fp.row_at_y(216), 1);
  EXPECT_EQ(fp.row_at_y(863), 3);
  EXPECT_EQ(fp.row_at_y(-50), 0);     // clamped
  EXPECT_EQ(fp.row_at_y(100000), 3);  // clamped
}

TEST(Floorplan, MixedHeights) {
  Tech tech;
  const Floorplan fp = Floorplan::make_mixed(
      Rect{{0, 0}, {1080, 1}}, 0,
      {TrackHeight::H6T, TrackHeight::H75T, TrackHeight::H6T}, tech, 54);
  EXPECT_EQ(fp.num_pairs(), 3);
  EXPECT_EQ(fp.row(0).height, 216);
  EXPECT_EQ(fp.row(2).height, 270);
  EXPECT_EQ(fp.pair_track_height(1), TrackHeight::H75T);
  EXPECT_EQ(fp.core().height(), 2 * 216 + 2 * 270 + 2 * 216);
  // Rows stacked gap-free.
  EXPECT_EQ(fp.row(2).y, 432);
  EXPECT_EQ(fp.row(4).y, 432 + 540);
}

TEST(Floorplan, RowAtYMixedBinarySearch) {
  Tech tech;
  std::vector<TrackHeight> ths(10, TrackHeight::H6T);
  ths[3] = ths[7] = TrackHeight::H75T;
  const Floorplan fp =
      Floorplan::make_mixed(Rect{{0, 0}, {1080, 1}}, 0, ths, tech, 54);
  for (int r = 0; r < fp.num_rows(); ++r) {
    EXPECT_EQ(fp.row_at_y(fp.row(r).y), r);
    EXPECT_EQ(fp.row_at_y(fp.row(r).y_top() - 1), r);
  }
}

TEST(Metrics, NetAndTotalHpwl) {
  Design d = make_tiny_design();
  Dbu sum = 0;
  for (NetId n = 0; n < d.netlist.num_nets(); ++n) sum += net_hpwl(d, n);
  EXPECT_EQ(total_hpwl(d), sum);
  EXPECT_GT(sum, 0);
}

TEST(Metrics, ClockNetExcludedFromHpwl) {
  Design d = make_tiny_design();
  const NetId n1 = 1;
  const Dbu before = net_hpwl(d, n1);
  EXPECT_GT(before, 0);
  d.netlist.net(n1).is_clock = true;
  EXPECT_EQ(net_hpwl(d, n1), 0);
}

TEST(Metrics, DisplacementTracksMoves) {
  Design d = make_tiny_design();
  const auto snap = placement_snapshot(d);
  EXPECT_EQ(total_displacement(d, snap), 0);
  d.netlist.instance(0).pos.x += 108;
  d.netlist.instance(1).pos.y += 216;
  EXPECT_EQ(total_displacement(d, snap), 108 + 216);
}

TEST(Metrics, OverlapDetection) {
  Design d = make_tiny_design();
  EXPECT_EQ(count_overlaps(d), 0);
  d.netlist.instance(1).pos = d.netlist.instance(0).pos;  // stack them
  EXPECT_GT(count_overlaps(d), 0);
}

TEST(Metrics, LegalityChecks) {
  Design d = make_tiny_design();
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;

  Design off_grid = make_tiny_design();
  off_grid.netlist.instance(0).pos.x = 1;  // not a site multiple
  EXPECT_FALSE(placement_is_legal(off_grid));

  Design off_row = make_tiny_design();
  off_row.netlist.instance(0).pos.y = 100;  // between rows
  EXPECT_FALSE(placement_is_legal(off_row));

  Design outside = make_tiny_design();
  outside.netlist.instance(0).pos.x = -108;
  EXPECT_FALSE(placement_is_legal(outside));
}

TEST(Metrics, TrackHeightMismatchFlagged) {
  Design d = make_tiny_design();
  // Swap instance 0 to a 7.5T master: its height no longer matches 6T rows.
  d.netlist.instance(0).master = find_asap7_master(
      *d.library, CellFunc::Inv, 1, TrackHeight::H75T, Vt::RVT);
  std::string why;
  EXPECT_FALSE(placement_is_legal(d, &why, /*require_track_match=*/true));
  EXPECT_NE(why.find("height"), std::string::npos);
}

TEST(Design, MinorityCountAndWidths) {
  Design d = make_tiny_design();
  EXPECT_EQ(d.num_minority(), 0);
  d.netlist.instance(1).master = find_asap7_master(
      *d.library, CellFunc::Nand2, 2, TrackHeight::H75T, Vt::LVT);
  EXPECT_EQ(d.num_minority(), 1);
  EXPECT_GT(d.total_width(TrackHeight::H75T), 0);
  EXPECT_GT(d.total_cell_area(), 0);
}

TEST(RowAssignment, Basics) {
  RowAssignment ra = RowAssignment::all_majority(5);
  EXPECT_EQ(ra.num_pairs(), 5);
  EXPECT_EQ(ra.num_minority(), 0);
  ra.pair_is_minority[2] = true;
  EXPECT_EQ(ra.num_minority(), 1);
  EXPECT_TRUE(ra.is_minority_row(4));   // row 4 -> pair 2
  EXPECT_TRUE(ra.is_minority_row(5));
  EXPECT_FALSE(ra.is_minority_row(3));
}

// --- IncrementalHpwl ------------------------------------------------------

/// Randomized multi-pin netlist: `n_inst` cells at random positions, `n_nets`
/// nets of degree 2-5 with distinct instances (driver first), the last net
/// marked as an ideal clock (excluded from HPWL). Dense enough that random
/// moves regularly land cells on net-bbox boundaries, exercising the
/// engine's exact-recompute slow path alongside the extend fast path.
Design make_random_design(int n_inst, int n_nets, std::uint64_t seed) {
  Design d;
  d.name = "random";
  d.library = liberty::library_ref();
  const Tech& tech = d.library->tech();
  const int inv = find_asap7_master(*d.library, CellFunc::Inv, 1,
                                    TrackHeight::H6T, Vt::RVT);
  Rng rng(seed);
  for (int i = 0; i < n_inst; ++i) {
    d.netlist.add_instance("c" + std::to_string(i), inv,
                           {rng.uniform_int(0, 40000) * 2,
                            rng.uniform_int(0, 20000) * 2});
  }
  const int out_pin = d.library->master(inv).output_pin();
  for (int n = 0; n < n_nets; ++n) {
    const NetId net = d.netlist.add_net("n" + std::to_string(n));
    const int degree = static_cast<int>(rng.uniform_int(2, 5));
    std::vector<InstId> picked;
    while (static_cast<int>(picked.size()) < degree) {
      const InstId i =
          static_cast<InstId>(rng.uniform_int(0, n_inst - 1));
      if (std::find(picked.begin(), picked.end(), i) == picked.end()) {
        picked.push_back(i);
      }
    }
    for (std::size_t j = 0; j < picked.size(); ++j) {
      d.netlist.connect(net, {picked[j], j == 0 ? out_pin : 0});
    }
    if (n == n_nets - 1) d.netlist.net(net).is_clock = true;
  }
  d.floorplan = Floorplan::make_uniform(Rect{{0, 0}, {90000, 43200}}, 100,
                                        tech.row_height_6t, TrackHeight::H6T,
                                        tech.site_width);
  return d;
}

TEST(IncrementalHpwl, MatchesFreshScanOnTinyDesign) {
  Design d = make_tiny_design();
  db::IncrementalHpwl eng(d);
  EXPECT_EQ(eng.total(), total_hpwl(d, 1));
  const Dbu t = eng.apply_move(0, {1080, 432});
  EXPECT_EQ(t, total_hpwl(d, 1));
  EXPECT_EQ(d.netlist.instance(0).pos, (Point{1080, 432}));
  eng.revert();
  EXPECT_EQ(d.netlist.instance(0).pos, (Point{0, 0}));
  EXPECT_EQ(eng.total(), total_hpwl(d, 1));
}

TEST(IncrementalHpwl, RandomMoveSequencesStayExact) {
  // The satellite property test: N random apply_move sequences — including
  // boundary-pin shrinks (moves pull extreme pins inward) and the clock-net
  // exclusion — never drift from a fresh total_hpwl() scan, bit-for-bit.
  Design d = make_random_design(60, 40, 99);
  db::IncrementalHpwl eng(d);
  Rng rng(7);
  for (int m = 0; m < 400; ++m) {
    const InstId i = static_cast<InstId>(rng.uniform_int(0, 59));
    const Point p{rng.uniform_int(0, 40000) * 2,
                  rng.uniform_int(0, 20000) * 2};
    const Dbu t = eng.apply_move(i, p);  // sequenced before the fresh scan
    ASSERT_EQ(t, total_hpwl(d, 1)) << "move " << m;
  }
  EXPECT_EQ(eng.moves(), 400);
  // A dense random workload must have hit both paths, or the test proves
  // less than it claims.
  EXPECT_GT(eng.recomputes(), 0);
  EXPECT_LT(eng.recomputes(), eng.moves() * 5);
}

TEST(IncrementalHpwl, RevertRestoresExactState) {
  Design d = make_random_design(40, 25, 5);
  const std::vector<Point> start = placement_snapshot(d);
  db::IncrementalHpwl eng(d);
  const Dbu t0 = eng.total();
  Rng rng(13);
  for (int round = 0; round < 20; ++round) {
    const int burst = static_cast<int>(rng.uniform_int(1, 8));
    for (int m = 0; m < burst; ++m) {
      eng.apply_move(static_cast<InstId>(rng.uniform_int(0, 39)),
                     {rng.uniform_int(0, 40000) * 2,
                      rng.uniform_int(0, 20000) * 2});
    }
    for (int m = 0; m < burst; ++m) eng.revert();
    ASSERT_EQ(eng.total(), t0) << "round " << round;
    ASSERT_EQ(placement_snapshot(d), start) << "round " << round;
  }
}

TEST(IncrementalHpwl, SyncWithAfterExternalMutation) {
  Design d = make_random_design(40, 25, 21);
  db::IncrementalHpwl eng(d);
  Rng rng(3);
  for (InstId i = 0; i < 40; ++i) {  // external bulk move, engine unaware
    d.netlist.instance(i).pos = {rng.uniform_int(0, 40000) * 2,
                                 rng.uniform_int(0, 20000) * 2};
  }
  EXPECT_EQ(eng.sync_with(), total_hpwl(d, 1));
  const Dbu t = eng.apply_move(7, {4000, 2000});  // engine usable after sync
  EXPECT_EQ(t, total_hpwl(d, 1));
}

TEST(IncrementalHpwl, ClockNetNeverContributes) {
  Design d = make_random_design(10, 5, 2);
  db::IncrementalHpwl eng(d);
  // Stretch only the clock net's cells: total must track the fresh scan
  // (which excludes the clock) rather than grow by the clock span.
  const Net& clk = d.netlist.net(4);
  ASSERT_TRUE(clk.is_clock);
  for (const PinRef& ref : clk.pins) {
    if (ref.is_port()) continue;
    const Dbu t = eng.apply_move(
        ref.inst, {ref.inst * 1000, d.netlist.instance(ref.inst).pos.y});
    EXPECT_EQ(t, total_hpwl(d, 1));
  }
}

}  // namespace
}  // namespace mth
