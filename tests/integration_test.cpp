// End-to-end integration: full five-flow pipeline with routing on two
// testcases, cross-checking the paper's aggregate claims at test scale, plus
// failure-injection around the flow API.

#include <gtest/gtest.h>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"
#include "mth/rap/fence.hpp"
#include "mth/report/svg.hpp"

namespace mth::flows {
namespace {

struct CaseRun {
  PreparedCase pc;
  FlowResult f1, f2, f5;
};

const CaseRun& run_aes() {
  static const CaseRun r = [] {
    FlowOptions opt;
    opt.scale = 0.06;
    opt.rap.ilp.time_limit_s = 20;
    CaseRun cr{prepare_case(synth::spec_by_name("aes_300"), opt), {}, {}, {}};
    cr.f1 = run_flow(cr.pc, FlowId::F1, opt, true, false).result;
    cr.f2 = run_flow(cr.pc, FlowId::F2, opt, true, false).result;
    cr.f5 = run_flow(cr.pc, FlowId::F5, opt, true, false).result;
    return cr;
  }();
  return r;
}

TEST(Integration, AllFlowsProduceCompleteResults) {
  const CaseRun& cr = run_aes();
  for (const FlowResult* r : {&cr.f1, &cr.f2, &cr.f5}) {
    EXPECT_TRUE(r->routed);
    EXPECT_GT(r->post.routed_wl, 0);
    EXPECT_GT(r->post.timing.total_power_mw(), 0.0);
    EXPECT_GT(r->post.timing.endpoints, 0);
  }
}

TEST(Integration, UnconstrainedIsLowerBoundOnWirelength) {
  // Paper §IV-B-6: row-constraint placement carries overhead vs Flow (1).
  const CaseRun& cr = run_aes();
  EXPECT_LE(cr.f1.hpwl, cr.f2.hpwl);
  EXPECT_LE(cr.f1.hpwl, cr.f5.hpwl);
  EXPECT_LE(cr.f1.post.routed_wl, cr.f2.post.routed_wl);
}

TEST(Integration, ProposedFlowBeatsBaselineHeadline) {
  // The paper's headline: Flow (5) reduces routed WL / power vs Flow (2).
  const CaseRun& cr = run_aes();
  EXPECT_LT(cr.f5.hpwl, cr.f2.hpwl);
  EXPECT_LE(cr.f5.post.routed_wl, cr.f2.post.routed_wl);
  EXPECT_LE(cr.f5.post.timing.total_power_mw(),
            cr.f2.post.timing.total_power_mw() * 1.01);
}

TEST(Integration, OverheadSmallerForProposedFlow) {
  // Flow (5)'s overhead over Flow (1) must be below Flow (2)'s (§IV-B-6).
  const CaseRun& cr = run_aes();
  const double oh2 = static_cast<double>(cr.f2.hpwl) / cr.f1.hpwl;
  const double oh5 = static_cast<double>(cr.f5.hpwl) / cr.f1.hpwl;
  EXPECT_LT(oh5, oh2);
}

TEST(Integration, HpwlRankPredictsRoutedRank) {
  // Paper footnote 5: HPWL rank correlates with routed-WL rank.
  const CaseRun& cr = run_aes();
  if (cr.f5.hpwl < cr.f2.hpwl) {
    EXPECT_LE(cr.f5.post.routed_wl, cr.f2.post.routed_wl * 1.05);
  }
}

TEST(Integration, SecondTestcaseFullPipeline) {
  FlowOptions opt;
  opt.scale = 0.04;
  opt.rap.ilp.time_limit_s = 15;
  const PreparedCase pc = prepare_case(synth::spec_by_name("des3_250"), opt);
  const FlowResult f4 = run_flow(pc, FlowId::F4, opt, true, false).result;
  EXPECT_TRUE(f4.routed);
  EXPECT_GT(f4.num_clusters, 0);
  EXPECT_GT(f4.post.routed_wl, 0);
}

TEST(Integration, Fig3StyleSvgRendering) {
  const CaseRun& cr = run_aes();
  Design d = cr.pc.initial;
  rap::RapOptions ro;
  ro.n_min_pairs = cr.pc.n_min_pairs;
  ro.width_library = cr.pc.original_library.get();
  ro.ilp.time_limit_s = 10;
  const rap::RapResult rr = rap::solve_rap(d, ro);
  const auto fences = rap::fence_regions(d.floorplan, rr.assignment);
  const std::string svg = report::placement_svg(d, fences);
  EXPECT_GT(svg.size(), 1000u);
  EXPECT_NE(svg.find("#ffd900"), std::string::npos);
}

TEST(Integration, TightTimeLimitStillFeasible) {
  // Failure injection: a near-zero ILP deadline must degrade to the greedy
  // incumbent, never to a crash or an invalid assignment.
  FlowOptions opt;
  opt.scale = 0.04;
  opt.rap.ilp.time_limit_s = 0.01;
  const PreparedCase pc = prepare_case(synth::spec_by_name("jpeg_400"), opt);
  const FlowResult f5 = run_flow(pc, FlowId::F5, opt, false, false).result;
  EXPECT_GT(f5.hpwl, 0);
  EXPECT_EQ(f5.n_min_pairs, pc.n_min_pairs);
}

TEST(Integration, RerunFromSamePreparedCaseIsStable) {
  const CaseRun& cr = run_aes();
  FlowOptions opt;
  opt.scale = 0.06;
  opt.rap.ilp.time_limit_s = 20;
  const FlowResult again = run_flow(cr.pc, FlowId::F2, opt, false, false).result;
  EXPECT_EQ(again.hpwl, cr.f2.hpwl);
  EXPECT_EQ(again.displacement, cr.f2.displacement);
}

}  // namespace
}  // namespace mth::flows
