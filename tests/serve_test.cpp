// mth::serve tests: envelope admission, deterministic tenant round-robin,
// cache-hit replay identity, overload rejects, and warm-started ECO re-solve
// through eco_base.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mth/serve/serve.hpp"

namespace mth::serve {
namespace {

// A small, fast job: aes_300 at 5% through the full proposed flow.
std::string job_line(const std::string& id, const std::string& tenant,
                     const std::string& extra = "") {
  return "{\"mth_ser_version\": 1, \"kind\": \"job\", \"id\": \"" + id +
         "\", \"tenant\": \"" + tenant +
         "\", \"testcase\": \"aes_300\", \"flow\": 5, \"options\": "
         "{\"mth_ser_version\": 1, \"kind\": \"flow_options\", \"scale\": "
         "0.05, \"rap\": {\"mth_ser_version\": 1, \"kind\": \"rap_options\", "
         "\"ilp\": {\"time_limit_s\": 10}}}" +
         extra + "}";
}

ser::Value parse_response(const std::string& line) {
  const ser::Value v = ser::parse(line);
  EXPECT_EQ(ser::envelope_kind(v), "response");
  return v;
}

TEST(Serve, SubmitDrainOk) {
  Server server({});
  ASSERT_EQ(server.submit(job_line("a", "t")), std::nullopt);
  EXPECT_EQ(server.queued(), 1);
  const std::vector<std::string> out = server.drain();
  ASSERT_EQ(out.size(), 1u);
  const ser::Value v = parse_response(out[0]);
  EXPECT_EQ(v.get("id").as_string(), "a");
  EXPECT_EQ(v.get("status").as_string(), "ok");
  EXPECT_FALSE(v.get("cache_hit").as_bool());
  EXPECT_GT(v.get("metrics").get("hpwl").as_int(), 0);
  EXPECT_GT(v.get("metrics").get("num_clusters").as_int(), 0);
  // The def payload is the defio interchange text of the final placement.
  EXPECT_NE(v.get("def").as_string().find("# mth-placement design"),
            std::string::npos);
  EXPECT_NE(v.get("def").as_string().find("\ninst "), std::string::npos);
  EXPECT_FALSE(v.get("trace_summary").as_string().empty());
  EXPECT_EQ(server.completed(), 1);
  EXPECT_NE(server.result_of("a"), nullptr);
}

TEST(Serve, CacheHitReplaysByteIdentically) {
  Server server({});
  ASSERT_EQ(server.submit(job_line("first", "t")), std::nullopt);
  ASSERT_EQ(server.submit(job_line("second", "t")), std::nullopt);
  const std::vector<std::string> out = server.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(server.cache_hits(), 1);
  EXPECT_FALSE(parse_response(out[0]).get("cache_hit").as_bool());
  EXPECT_TRUE(parse_response(out[1]).get("cache_hit").as_bool());
  // Responses are byte-identical apart from the id and cache_hit members.
  std::string a = out[0], b = out[1];
  auto canon = [](std::string s, const std::string& id) {
    const std::string id_field = "\"id\":\"" + id + "\"";
    s.replace(s.find(id_field), id_field.size(), "\"id\":\"X\"");
    const std::string hit_t = "\"cache_hit\":true";
    const std::string hit_f = "\"cache_hit\":false";
    const std::size_t p = s.find(hit_t);
    if (p != std::string::npos) s.replace(p, hit_t.size(), hit_f);
    return s;
  };
  EXPECT_EQ(canon(a, "first"), canon(b, "second"));
  // Both jobs left the same referenceable RapResult.
  EXPECT_EQ(server.result_of("first"), server.result_of("second"));
}

TEST(Serve, NoCacheRunsCold) {
  ServeOptions opt;
  opt.cache = false;
  Server server(opt);
  ASSERT_EQ(server.submit(job_line("a", "t")), std::nullopt);
  ASSERT_EQ(server.submit(job_line("b", "t")), std::nullopt);
  const std::vector<std::string> out = server.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(server.cache_hits(), 0);
  EXPECT_FALSE(parse_response(out[1]).get("cache_hit").as_bool());
}

TEST(Serve, RejectsOnOverload) {
  ServeOptions opt;
  opt.max_queue = 1;
  Server server(opt);
  ASSERT_EQ(server.submit(job_line("a", "t")), std::nullopt);
  const std::optional<std::string> r = server.submit(job_line("b", "t"));
  ASSERT_TRUE(r.has_value());
  const ser::Value v = parse_response(*r);
  EXPECT_EQ(v.get("status").as_string(), "rejected");
  EXPECT_EQ(v.get("id").as_string(), "b");
  EXPECT_EQ(server.rejected(), 1);
  EXPECT_EQ(server.queued(), 1);
}

TEST(Serve, TenantRoundRobinIsDeterministic) {
  ServeOptions opt;
  opt.cache = false;  // cold runs so every response reports its own job
  Server server(opt);
  // Interleave submits adversarially: one tenant floods first.
  ASSERT_EQ(server.submit(job_line("b1", "bob")), std::nullopt);
  ASSERT_EQ(server.submit(job_line("b2", "bob")), std::nullopt);
  ASSERT_EQ(server.submit(job_line("a1", "alice")), std::nullopt);
  ASSERT_EQ(server.submit(job_line("a2", "alice")), std::nullopt);
  std::vector<std::string> ids;
  for (const std::string& line : server.drain()) {
    ids.push_back(parse_response(line).get("id").as_string());
  }
  // Lexicographic round-robin over tenants: alice, bob, alice, bob.
  EXPECT_EQ(ids, (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
}

TEST(Serve, MalformedAndInvalidEnvelopes) {
  Server server({});
  // Not JSON at all.
  const auto r1 = server.submit("not json");
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(parse_response(*r1).get("status").as_string(), "error");
  // Unknown field: versioned envelopes are closed schemas.
  const auto r2 = server.submit(job_line("x", "t", ", \"typo_field\": 1"));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(parse_response(*r2).get("status").as_string(), "error");
  // Future schema version.
  const auto r3 = server.submit(
      "{\"mth_ser_version\": 99, \"kind\": \"job\", \"testcase\": \"x\"}");
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(parse_response(*r3).get("status").as_string(), "error");
  // Unknown testcase fails at execution, not admission.
  const auto r4 = server.submit(
      "{\"mth_ser_version\": 1, \"kind\": \"job\", \"id\": \"bad\", "
      "\"testcase\": \"no_such_case\"}");
  EXPECT_EQ(r4, std::nullopt);
  const std::vector<std::string> out = server.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(parse_response(out[0]).get("status").as_string(), "error");
  EXPECT_EQ(server.accepted(), 1);
}

TEST(Serve, LegacyReproCardAccepted) {
  Server server({});
  const auto r = server.submit(
      "{\"testcase\": \"aes_300\", \"iteration\": 3, \"seed_base\": 1, "
      "\"generator_seed\": 7, \"target_cells\": 120, \"scale\": 0.05, "
      "\"findings\": [\"x\"]}");
  EXPECT_EQ(r, std::nullopt);
  const std::vector<std::string> out = server.drain();
  ASSERT_EQ(out.size(), 1u);
  const ser::Value v = parse_response(out[0]);
  EXPECT_EQ(v.get("status").as_string(), "ok");
  EXPECT_EQ(v.get("id").as_string(), "aes_300#3");
}

TEST(Serve, EcoBaseHotStartsFromPriorJob) {
  Server server({});
  ASSERT_EQ(server.submit(job_line("base", "t")), std::nullopt);
  ASSERT_EQ(server.drain().size(), 1u);
  ASSERT_NE(server.result_of("base"), nullptr);
  // Same case resubmitted as an ECO against the base job: distinct cache
  // key (warm hints may steer the search), runs ok, hot-start telemetry in
  // the rap result it leaves behind.
  const auto r =
      server.submit(job_line("eco", "t", ", \"eco_base\": \"base\""));
  EXPECT_EQ(r, std::nullopt);
  const std::vector<std::string> out = server.drain();
  ASSERT_EQ(out.size(), 1u);
  const ser::Value v = parse_response(out[0]);
  EXPECT_EQ(v.get("status").as_string(), "ok");
  EXPECT_FALSE(v.get("cache_hit").as_bool()) << "eco jobs must not alias the "
                                                "cold entry";
  // An unperturbed re-solve agrees with the base run (replayed from cache).
  ASSERT_EQ(server.submit(job_line("again", "t")), std::nullopt);
  const std::vector<std::string> replay = server.drain();
  ASSERT_EQ(replay.size(), 1u);
  EXPECT_EQ(v.get("metrics").get("hpwl").as_int(),
            parse_response(replay[0]).get("metrics").get("hpwl").as_int());
  // Unknown eco_base is an execution error.
  ASSERT_EQ(server.submit(job_line("dangling", "t",
                                   ", \"eco_base\": \"never_ran\"")),
            std::nullopt);
  const std::vector<std::string> out2 = server.drain();
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(parse_response(out2[0]).get("status").as_string(), "error");
}

}  // namespace
}  // namespace mth::serve
