// STA + power tests: monotonicity properties (clock period, placement
// quality, wire model), endpoint accounting, power decomposition.

#include <gtest/gtest.h>

#include "mth/flows/flow.hpp"
#include "mth/timing/sta.hpp"
#include "mth/util/rng.hpp"

namespace mth::timing {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.05;
    return flows::prepare_case(synth::spec_by_name("aes_360"), opt);
  }();
  return pc;
}

TEST(Sta, ReportsEndpoints) {
  const Design& d = small_case().initial;
  const TimingReport rep = analyze(d, nullptr);
  // Endpoints = register D pins + primary outputs (all of them get timed).
  int dffs = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    dffs += d.master_of(i).func == CellFunc::Dff;
  }
  EXPECT_GE(rep.endpoints, dffs);
  EXPECT_GT(rep.max_arrival_ps, 0.0);
}

TEST(Sta, SlackSignConventions) {
  const Design& d = small_case().initial;
  const TimingReport rep = analyze(d, nullptr);
  EXPECT_LE(rep.wns_ns, 0.0);  // WNS is 0 or negative by construction
  EXPECT_LE(rep.tns_ns, 0.0);
  if (rep.violating_endpoints == 0) {
    EXPECT_EQ(rep.wns_ns, 0.0);
    EXPECT_EQ(rep.tns_ns, 0.0);
  } else {
    EXPECT_LT(rep.wns_ns, 0.0);
    EXPECT_LE(rep.tns_ns, rep.wns_ns);  // TNS aggregates all violations
  }
}

TEST(Sta, LongerClockImprovesSlack) {
  Design d = small_case().initial;
  d.clock_ps = 360;
  const TimingReport tight = analyze(d, nullptr);
  d.clock_ps = 10000;
  const TimingReport loose = analyze(d, nullptr);
  EXPECT_GE(loose.tns_ns, tight.tns_ns);
  EXPECT_GE(loose.wns_ns, tight.wns_ns);
  EXPECT_EQ(loose.violating_endpoints, 0) << "10 ns must meet timing";
}

TEST(Sta, ArrivalUnaffectedByClockPeriod) {
  Design d = small_case().initial;
  d.clock_ps = 360;
  const TimingReport a = analyze(d, nullptr);
  d.clock_ps = 1000;
  const TimingReport b = analyze(d, nullptr);
  EXPECT_DOUBLE_EQ(a.max_arrival_ps, b.max_arrival_ps);
}

TEST(Sta, RoutedWiresSlowerThanIdealZeroWire) {
  // Compare against an STA variant with a zero-length wire model by scaling
  // the detour factor: longer wires => later arrivals.
  const Design& d = small_case().initial;
  StaOptions fast;
  fast.wire_detour_factor = 0.0;  // zero wire parasitics
  StaOptions slow;
  slow.wire_detour_factor = 3.0;
  const TimingReport f = analyze(d, nullptr, fast);
  const TimingReport s = analyze(d, nullptr, slow);
  EXPECT_GT(s.max_arrival_ps, f.max_arrival_ps);
  EXPECT_LE(s.tns_ns, f.tns_ns);
}

TEST(Sta, RouteDataUsedWhenProvided) {
  const Design& d = small_case().initial;
  const route::RouteResult routes = route::route_design(d);
  const TimingReport with = analyze(d, &routes);
  const TimingReport without = analyze(d, nullptr);
  // Both must be sane; routed arrivals differ from the star model.
  EXPECT_GT(with.max_arrival_ps, 0.0);
  EXPECT_NE(with.max_arrival_ps, without.max_arrival_ps);
}

TEST(Sta, ScrambledPlacementHurtsTiming) {
  Design d = small_case().initial;
  const route::RouteResult good_routes = route::route_design(d);
  const TimingReport good = analyze(d, &good_routes);
  Rng rng(9);
  const Rect core = d.floorplan.core();
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    Instance& inst = d.netlist.instance(i);
    const CellMaster& m = d.master_of(i);
    inst.pos = {rng.uniform_int(core.lo.x, core.hi.x - m.width),
                rng.uniform_int(core.lo.y, core.hi.y - m.height)};
  }
  const route::RouteResult bad_routes = route::route_design(d);
  const TimingReport bad = analyze(d, &bad_routes);
  EXPECT_LT(bad.tns_ns, good.tns_ns);
  EXPECT_GT(bad.max_arrival_ps, good.max_arrival_ps);
}

TEST(Power, DecompositionPositiveAndAdditive) {
  const Design& d = small_case().initial;
  const TimingReport rep = analyze(d, nullptr);
  EXPECT_GT(rep.dynamic_mw, 0.0);
  EXPECT_GT(rep.internal_mw, 0.0);
  EXPECT_GT(rep.leakage_mw, 0.0);
  EXPECT_NEAR(rep.total_power_mw(),
              rep.dynamic_mw + rep.internal_mw + rep.leakage_mw, 1e-12);
}

TEST(Power, FasterClockMorePower) {
  Design d = small_case().initial;
  d.clock_ps = 360;
  const double fast = analyze(d, nullptr).total_power_mw();
  d.clock_ps = 720;
  const double slow = analyze(d, nullptr).total_power_mw();
  EXPECT_GT(fast, slow);  // dynamic power scales with frequency
}

TEST(Power, LongerWiresMorePower) {
  const Design& d = small_case().initial;
  StaOptions shorter;
  shorter.wire_detour_factor = 1.0;
  StaOptions longer;
  longer.wire_detour_factor = 2.0;
  EXPECT_GT(analyze(d, nullptr, longer).dynamic_mw,
            analyze(d, nullptr, shorter).dynamic_mw);
}

TEST(Power, LeakageIndependentOfPlacement) {
  Design d = small_case().initial;
  const double before = analyze(d, nullptr).leakage_mw;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    d.netlist.instance(i).pos.x = d.floorplan.core().lo.x;
  }
  EXPECT_DOUBLE_EQ(analyze(d, nullptr).leakage_mw, before);
}

TEST(Sta, Deterministic) {
  const Design& d = small_case().initial;
  const route::RouteResult routes = route::route_design(d);
  const TimingReport a = analyze(d, &routes);
  const TimingReport b = analyze(d, &routes);
  EXPECT_DOUBLE_EQ(a.tns_ns, b.tns_ns);
  EXPECT_DOUBLE_EQ(a.wns_ns, b.wns_ns);
  EXPECT_DOUBLE_EQ(a.total_power_mw(), b.total_power_mw());
}

}  // namespace
}  // namespace mth::timing
