// Unit + property tests for the DBU geometry primitives.

#include <gtest/gtest.h>

#include "mth/util/geometry.hpp"
#include "mth/util/rng.hpp"

namespace mth {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, (Point{2, 6}));
  EXPECT_EQ(a - b, (Point{4, 2}));
}

TEST(Point, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({3, 4}, {0, 0}), 7);
  EXPECT_EQ(manhattan({-2, -2}, {2, 2}), 8);
  EXPECT_EQ(manhattan({5, 5}, {5, 5}), 0);
}

TEST(Rect, BasicAccessors) {
  const Rect r{{10, 20}, {30, 50}};
  EXPECT_EQ(r.width(), 20);
  EXPECT_EQ(r.height(), 30);
  EXPECT_EQ(r.area(), 600);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.center(), (Point{20, 35}));
}

TEST(Rect, EmptyRects) {
  EXPECT_TRUE((Rect{{0, 0}, {0, 10}}).empty());
  EXPECT_TRUE((Rect{{5, 5}, {5, 5}}).empty());
  EXPECT_EQ((Rect{{10, 0}, {0, 10}}).area(), 0);
}

TEST(Rect, ContainsPointHalfOpen) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{5, 10}));
  EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.contains(Rect{{2, 2}, {8, 8}}));
  EXPECT_TRUE(r.contains(r));
  EXPECT_FALSE(r.contains(Rect{{5, 5}, {11, 8}}));
}

TEST(Rect, Overlaps) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_TRUE(r.overlaps(Rect{{5, 5}, {15, 15}}));
  EXPECT_FALSE(r.overlaps(Rect{{10, 0}, {20, 10}}));  // abutting, half-open
  EXPECT_FALSE(r.overlaps(Rect{{20, 20}, {30, 30}}));
}

TEST(Rect, IntersectAndBBox) {
  const Rect a{{0, 0}, {10, 10}};
  const Rect b{{5, 5}, {15, 15}};
  EXPECT_EQ(a.intersect(b), (Rect{{5, 5}, {10, 10}}));
  EXPECT_EQ(a.bbox_with(b), (Rect{{0, 0}, {15, 15}}));
  const Rect far{{20, 20}, {30, 30}};
  EXPECT_TRUE(a.intersect(far).empty());
}

TEST(Rect, ClampPoint) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_EQ(r.clamp(Point{-5, 5}), (Point{0, 5}));
  EXPECT_EQ(r.clamp(Point{15, 15}), (Point{10, 10}));
  EXPECT_EQ(r.clamp(Point{3, 4}), (Point{3, 4}));
}

TEST(BBox, AccumulatesHalfPerimeter) {
  BBox bb;
  EXPECT_EQ(bb.half_perimeter(), 0);
  bb.add({0, 0});
  EXPECT_EQ(bb.half_perimeter(), 0);
  bb.add({10, 5});
  EXPECT_EQ(bb.half_perimeter(), 15);
  bb.add({-2, 7});
  EXPECT_EQ(bb.half_perimeter(), 12 + 7);
}

TEST(Snap, Down) {
  EXPECT_EQ(snap_down(10, 4), 8);
  EXPECT_EQ(snap_down(8, 4), 8);
  EXPECT_EQ(snap_down(0, 4), 0);
  EXPECT_EQ(snap_down(-1, 4), -4);
  EXPECT_EQ(snap_down(-4, 4), -4);
}

TEST(Snap, Up) {
  EXPECT_EQ(snap_up(10, 4), 12);
  EXPECT_EQ(snap_up(8, 4), 8);
  EXPECT_EQ(snap_up(-1, 4), 0);
  EXPECT_EQ(snap_up(-5, 4), -4);
}

TEST(Snap, Near) {
  EXPECT_EQ(snap_near(9, 4), 8);
  EXPECT_EQ(snap_near(10, 4), 12);  // tie goes up
  EXPECT_EQ(snap_near(11, 4), 12);
  EXPECT_EQ(snap_near(-3, 4), -4);
}

// Property sweep: snap relations hold for random values and grids.
class SnapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapProperty, Invariants) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Dbu g = rng.uniform_int(1, 100);
    const Dbu v = rng.uniform_int(-100000, 100000);
    const Dbu d = snap_down(v, g);
    const Dbu u = snap_up(v, g);
    const Dbu n = snap_near(v, g);
    ASSERT_EQ(d % g, 0);
    ASSERT_EQ(u % g, 0);
    ASSERT_EQ(n % g, 0);
    ASSERT_LE(d, v);
    ASSERT_GE(u, v);
    ASSERT_LT(v - d, g);
    ASSERT_LT(u - v, g);
    ASSERT_LE(std::llabs(n - v) * 2, g);  // nearest within half grid (ties up)
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// Property: intersect is commutative and contained in both.
class RectProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RectProperty, IntersectContainment) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    auto mk = [&] {
      const Dbu x0 = rng.uniform_int(-100, 100);
      const Dbu y0 = rng.uniform_int(-100, 100);
      return Rect{{x0, y0},
                  {x0 + rng.uniform_int(1, 100), y0 + rng.uniform_int(1, 100)}};
    };
    const Rect a = mk();
    const Rect b = mk();
    const Rect i1 = a.intersect(b);
    const Rect i2 = b.intersect(a);
    ASSERT_EQ(i1, i2);
    if (!i1.empty()) {
      ASSERT_TRUE(a.contains(i1));
      ASSERT_TRUE(b.contains(i1));
      ASSERT_TRUE(a.overlaps(b));
    } else {
      ASSERT_FALSE(a.overlaps(b));
    }
    const Rect bb = a.bbox_with(b);
    ASSERT_TRUE(bb.contains(a));
    ASSERT_TRUE(bb.contains(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectProperty,
                         ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace mth
