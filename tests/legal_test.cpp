// Abacus legalization tests: legality invariants, displacement minimality
// trends, row-constraint filters, swap polish.

#include <gtest/gtest.h>

#include "mth/db/metrics.hpp"
#include "mth/db/mlef.hpp"
#include "mth/db/rowassign.hpp"
#include "mth/legal/abacus.hpp"
#include "mth/legal/polish.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/place/placer.hpp"
#include "mth/synth/generator.hpp"
#include "mth/util/rng.hpp"

namespace mth::legal {
namespace {

Design make_placed_design(const char* name, double scale, std::uint64_t seed = 7) {
  auto lib = liberty::library_ref();
  synth::GeneratorOptions gen;
  gen.scale = scale;
  gen.seed = seed;
  Design d = synth::generate_testcase(synth::spec_by_name(name), lib, gen).design;
  double minority_area = 0, total = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const double a = static_cast<double>(d.master_of(i).area());
    total += a;
    if (d.is_minority(i)) minority_area += a;
  }
  static std::vector<std::shared_ptr<MlefTransform>> keep_alive;
  keep_alive.push_back(std::make_shared<MlefTransform>(lib, minority_area / total));
  keep_alive.back()->to_mlef(d);
  place::build_uniform_floorplan(d, 0.6, 1.0);
  place::GlobalPlaceOptions gp;
  gp.max_iterations = 10;
  place::global_place(d, gp);
  return d;
}

TEST(Abacus, ProducesLegalPlacement) {
  Design d = make_placed_design("aes_360", 0.05);
  const auto r = abacus_legalize(d, {});
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
  EXPECT_EQ(count_overlaps(d), 0);
}

TEST(Abacus, ReportsDisplacement) {
  Design d = make_placed_design("aes_360", 0.05);
  const auto snap = placement_snapshot(d);
  const auto r = abacus_legalize(d, {});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.total_displacement, total_displacement(d, snap));
  EXPECT_GE(r.max_displacement, 0);
  EXPECT_LE(r.max_displacement, r.total_displacement);
}

TEST(Abacus, AlreadyLegalIsNearNoop) {
  Design d = make_placed_design("aes_400", 0.04);
  abacus_legalize(d, {});
  const auto snap = placement_snapshot(d);
  const auto r = abacus_legalize(d, {});
  ASSERT_TRUE(r.success);
  // Re-legalizing a legal placement should barely move anything.
  EXPECT_LE(total_displacement(d, snap),
            static_cast<Dbu>(d.netlist.num_instances()) * 60);
}

TEST(Abacus, SmallPerturbationSmallMove) {
  Design d = make_placed_design("aes_400", 0.04);
  abacus_legalize(d, {});
  // Nudge 10 cells by one site; Abacus must restore legality cheaply.
  Rng rng(3);
  for (int k = 0; k < 10; ++k) {
    const InstId i = static_cast<InstId>(
        rng.uniform_int(0, d.netlist.num_instances() - 1));
    d.netlist.instance(i).pos.x += 27;  // off the site grid
  }
  const auto r = abacus_legalize(d, {});
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
}

TEST(Abacus, RowFilterRespected) {
  Design d = make_placed_design("aes_300", 0.05);
  const int pairs = d.floorplan.num_pairs();
  RowAssignment ra = RowAssignment::all_majority(pairs);
  // Mark every 3rd pair minority (comfortable capacity for aes_300's 28%
  // minority at 60% utilization).
  for (int p = 1; p < pairs; p += 3) ra.pair_is_minority[static_cast<std::size_t>(p)] = true;

  AbacusOptions opt;
  const Design* dp = &d;
  const RowAssignment* rap = &ra;
  opt.row_filter = [dp, rap](InstId cell, int row) {
    return dp->is_minority(cell) == rap->is_minority_row(row);
  };
  const auto r = abacus_legalize(d, opt);
  ASSERT_TRUE(r.success);
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const int row = d.floorplan.row_at_y(d.netlist.instance(i).pos.y);
    EXPECT_EQ(d.is_minority(i), ra.is_minority_row(row))
        << d.netlist.instance(i).name;
  }
  EXPECT_EQ(count_overlaps(d), 0);
}

TEST(Abacus, RespectTrackHeightInMixedFloorplan) {
  // Build a mixed floorplan and place a few mixed-height cells directly.
  auto lib = liberty::library_ref();
  Design d;
  d.library = lib;
  const Tech& tech = lib->tech();
  const int inv6 = find_asap7_master(*lib, CellFunc::Inv, 1, TrackHeight::H6T, Vt::RVT);
  const int inv7 = find_asap7_master(*lib, CellFunc::Inv, 2, TrackHeight::H75T, Vt::RVT);
  for (int k = 0; k < 12; ++k) {
    d.netlist.add_instance("a" + std::to_string(k), k % 3 == 0 ? inv7 : inv6,
                           {k * 200, 300});
  }
  d.floorplan = Floorplan::make_mixed(
      Rect{{0, 0}, {10800, 1}}, 0,
      {TrackHeight::H6T, TrackHeight::H75T, TrackHeight::H6T}, tech, 54);
  AbacusOptions opt;
  opt.respect_track_height = true;
  const auto r = abacus_legalize(d, opt);
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why, /*require_track_match=*/true)) << why;
}

TEST(Abacus, FailsGracefullyWhenNoRowFits) {
  // Single 6T row pair but a 7.5T cell with height enforcement: impossible.
  auto lib = liberty::library_ref();
  Design d;
  d.library = lib;
  const int inv7 =
      find_asap7_master(*lib, CellFunc::Inv, 1, TrackHeight::H75T, Vt::RVT);
  d.netlist.add_instance("x", inv7, {0, 0});
  d.floorplan = Floorplan::make_uniform(Rect{{0, 0}, {1080, 432}}, 1,
                                        lib->tech().row_height_6t,
                                        TrackHeight::H6T, 54);
  AbacusOptions opt;
  opt.respect_track_height = true;
  const auto r = abacus_legalize(d, opt);
  EXPECT_FALSE(r.success);
}

TEST(Abacus, CapacityOverflowHandledAcrossRows) {
  // More cell width than one row: cells must spill to other rows, stay legal.
  auto lib = liberty::library_ref();
  Design d;
  d.library = lib;
  const int buf6 = find_asap7_master(*lib, CellFunc::Buf, 4, TrackHeight::H6T, Vt::RVT);
  const Dbu w = lib->master(buf6).width;
  const int per_row = static_cast<int>(2160 / w);
  for (int k = 0; k < per_row * 3; ++k) {
    d.netlist.add_instance("b" + std::to_string(k), buf6, {0, 0});  // all at origin
  }
  d.floorplan = Floorplan::make_uniform(Rect{{0, 0}, {2160, 4 * 216}}, 2,
                                        216, TrackHeight::H6T, 54);
  const auto r = abacus_legalize(d, {});
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
}

TEST(SwapPolish, NeverIncreasesHpwl) {
  Design d = make_placed_design("aes_360", 0.05);
  abacus_legalize(d, {});
  const Dbu before = total_hpwl(d);
  const int swaps = swap_polish(d);
  const Dbu after = total_hpwl(d);
  EXPECT_LE(after, before);
  EXPECT_GE(swaps, 0);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
}

TEST(SwapPolish, ConvergeStopsAtFixpoint) {
  Design d = make_placed_design("aes_400", 0.04);
  abacus_legalize(d, {});
  swap_polish_converge(d, 10);
  // A converged placement admits no further improving swap.
  EXPECT_EQ(swap_polish(d), 0);
}

TEST(SwapPolish, PreservesLegalityWithMixedWidths) {
  Design d = make_placed_design("des3_250", 0.03);
  abacus_legalize(d, {});
  swap_polish_converge(d);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
  EXPECT_EQ(count_overlaps(d), 0);
}

// Parameterized legality sweep across testcases and seeds.
class AbacusSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(AbacusSweep, LegalAndBounded) {
  const auto [name, seed] = GetParam();
  Design d = make_placed_design(name, 0.03, static_cast<std::uint64_t>(seed));
  const auto snap = placement_snapshot(d);
  const auto r = abacus_legalize(d, {});
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
  // Legalization from a spread global placement moves each cell a bounded
  // distance on average (< 8 row heights here, generous).
  const double avg =
      static_cast<double>(total_displacement(d, snap)) / d.netlist.num_instances();
  EXPECT_LT(avg, 8.0 * 270.0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AbacusSweep,
    ::testing::Combine(::testing::Values("aes_320", "ldpc_350", "vga_270"),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace mth::legal
