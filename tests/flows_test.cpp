// Flow driver tests: the Table III matrix, shared initial placement,
// finalization to mixed-height rows, and the paper's qualitative orderings.

#include <gtest/gtest.h>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"

namespace mth::flows {
namespace {

const PreparedCase& shared_case() {
  static const PreparedCase pc = [] {
    FlowOptions opt;
    opt.scale = 0.05;
    return prepare_case(synth::spec_by_name("aes_300"), opt);
  }();
  return pc;
}

FlowOptions default_options() {
  FlowOptions opt;
  opt.scale = 0.05;
  opt.rap.ilp.time_limit_s = 20;
  return opt;
}

TEST(Prepare, InitialPlacementIsLegalMlef) {
  const PreparedCase& pc = shared_case();
  std::string why;
  EXPECT_TRUE(placement_is_legal(pc.initial, &why)) << why;
  EXPECT_GT(pc.minority_cells, 0);
  EXPECT_GE(pc.n_min_pairs, 1);
  EXPECT_EQ(pc.initial_positions.size(),
            static_cast<std::size_t>(pc.initial.netlist.num_instances()));
}

TEST(Prepare, MlefSpaceUniformHeights) {
  const PreparedCase& pc = shared_case();
  const Dbu h = pc.initial.master_of(0).height;
  for (InstId i = 0; i < pc.initial.netlist.num_instances(); ++i) {
    ASSERT_EQ(pc.initial.master_of(i).height, h);
  }
  EXPECT_EQ(h, pc.mlef->mlef_height());
}

TEST(Flow1, NoDisplacementByDefinition) {
  const PreparedCase& pc = shared_case();
  const FlowResult r = run_flow(pc, FlowId::F1, default_options(), false, false).result;
  EXPECT_EQ(r.displacement, 0);
  EXPECT_EQ(r.hpwl, total_hpwl(pc.initial));
}

TEST(Flows, RunFlowDoesNotMutatePreparedCase) {
  const PreparedCase& pc = shared_case();
  const Dbu before = total_hpwl(pc.initial);
  (void)run_flow(pc, FlowId::F2, default_options(), false, false).result;
  EXPECT_EQ(total_hpwl(pc.initial), before);
  EXPECT_EQ(placement_snapshot(pc.initial), pc.initial_positions);
}

TEST(Flows, ConstrainedFlowsSatisfyRowConstraint) {
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  for (FlowId id : {FlowId::F2, FlowId::F3, FlowId::F4, FlowId::F5}) {
    const FlowResult r = run_flow(pc, id, opt, false, false).result;
    EXPECT_GT(r.displacement, 0) << to_string(id);
    EXPECT_GT(r.hpwl, 0) << to_string(id);
  }
}

TEST(Flows, PaperOrderingHpwl) {
  // Flow (1) (unconstrained) has the best HPWL; the proposed legalization
  // flows (3)/(5) beat their Abacus counterparts (2)/(4) on HPWL while
  // spending more displacement (§IV-B-2).
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  const FlowResult f1 = run_flow(pc, FlowId::F1, opt, false, false).result;
  const FlowResult f2 = run_flow(pc, FlowId::F2, opt, false, false).result;
  const FlowResult f3 = run_flow(pc, FlowId::F3, opt, false, false).result;
  const FlowResult f5 = run_flow(pc, FlowId::F5, opt, false, false).result;
  EXPECT_LE(f1.hpwl, f2.hpwl);
  EXPECT_LE(f1.hpwl, f5.hpwl);
  EXPECT_LT(f3.hpwl, f2.hpwl);
  EXPECT_GT(f3.displacement, f2.displacement);
}

TEST(Flows, RapStatsOnlyForIlpFlows) {
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  const FlowResult f2 = run_flow(pc, FlowId::F2, opt, false, false).result;
  EXPECT_EQ(f2.num_clusters, 0);
  const FlowResult f4 = run_flow(pc, FlowId::F4, opt, false, false).result;
  EXPECT_GT(f4.num_clusters, 0);
  EXPECT_GE(f4.ilp_seconds, 0.0);
  EXPECT_TRUE(f4.ilp_status == ilp::Status::Optimal ||
              f4.ilp_status == ilp::Status::Feasible);
}

TEST(Flows, RapCacheSharedBetweenF4AndF5) {
  FlowOptions opt = default_options();
  const PreparedCase pc = prepare_case(synth::spec_by_name("aes_400"), opt);
  const FlowResult f4 = run_flow(pc, FlowId::F4, opt, false, false).result;
  ASSERT_NE(pc.rap_cache, nullptr);
  const auto* cached = pc.rap_cache.get();
  const FlowResult f5 = run_flow(pc, FlowId::F5, opt, false, false).result;
  EXPECT_EQ(pc.rap_cache.get(), cached) << "F5 must reuse F4's RAP solution";
  EXPECT_EQ(f4.num_clusters, f5.num_clusters);
}

TEST(Finalize, MixedFloorplanAndLegality) {
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  Design d = pc.initial;
  const baseline::KmeansAssignment ka =
      baseline::assign_rows_kmeans(d, pc.n_min_pairs, opt.baseline);
  baseline::legalize_with_assignment(d, ka.rows, &ka.minority_cells,
                                     &ka.cell_pair);
  finalize_mixed(d, *pc.mlef, ka.rows);

  // Back in the original library.
  EXPECT_EQ(d.library, pc.original_library);
  // Minority pairs are 7.5T rows now.
  const Floorplan& fp = d.floorplan;
  for (int p = 0; p < fp.num_pairs(); ++p) {
    EXPECT_EQ(fp.pair_track_height(p), ka.rows.is_minority_pair(p)
                                           ? TrackHeight::H75T
                                           : TrackHeight::H6T);
  }
  // Fully legal in the strict mixed-height sense.
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why, /*require_track_match=*/true)) << why;
}

TEST(Finalize, CoreHeightReflectsMix) {
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  Design d = pc.initial;
  const baseline::KmeansAssignment ka =
      baseline::assign_rows_kmeans(d, pc.n_min_pairs, opt.baseline);
  baseline::legalize_with_assignment(d, ka.rows, &ka.minority_cells,
                                     &ka.cell_pair);
  const int pairs = d.floorplan.num_pairs();
  finalize_mixed(d, *pc.mlef, ka.rows);
  const Tech& tech = d.library->tech();
  const Dbu expect = 2 * (static_cast<Dbu>(pc.n_min_pairs) * tech.row_height_75t +
                          static_cast<Dbu>(pairs - pc.n_min_pairs) * tech.row_height_6t);
  EXPECT_EQ(d.floorplan.core().height(), expect);
}

TEST(PostRoute, MetricsPopulated) {
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  const FlowResult r =
      run_flow(pc, FlowId::F5, opt, /*with_route=*/true, false).result;
  EXPECT_TRUE(r.routed);
  EXPECT_GT(r.post.routed_wl, 0);
  EXPECT_GT(r.post.timing.total_power_mw(), 0.0);
  EXPECT_LE(r.post.timing.wns_ns, 0.0);
  // Clock tree synthesized alongside routing.
  EXPECT_GT(r.post.cts.total_wirelength, 0);
  EXPECT_GT(r.post.cts.clock_power_mw, 0.0);
  EXPECT_GE(r.post.cts.skew_ps, 0.0);
}

TEST(PostRoute, RoutedWlExceedsHpwl) {
  const PreparedCase& pc = shared_case();
  const FlowOptions opt = default_options();
  const FlowResult r = run_flow(pc, FlowId::F2, opt, true, false).result;
  // Routed trees are at least as long as placement HPWL (same space modulo
  // the mixed-height revert, which changes geometry mildly).
  EXPECT_GT(r.post.routed_wl, r.hpwl / 2);
}

TEST(Flows, DeterministicAcrossRuns) {
  FlowOptions opt = default_options();
  const PreparedCase a = prepare_case(synth::spec_by_name("aes_400"), opt);
  const PreparedCase b = prepare_case(synth::spec_by_name("aes_400"), opt);
  const FlowResult ra = run_flow(a, FlowId::F2, opt, false, false).result;
  const FlowResult rb = run_flow(b, FlowId::F2, opt, false, false).result;
  EXPECT_EQ(ra.hpwl, rb.hpwl);
  EXPECT_EQ(ra.displacement, rb.displacement);
}

TEST(Flows, ToStringNames) {
  EXPECT_STREQ(to_string(FlowId::F1), "Flow(1)");
  EXPECT_STREQ(to_string(FlowId::F2), "Flow(2)[10]");
  EXPECT_STREQ(to_string(FlowId::F5), "Flow(5)[Ours]");
}

}  // namespace
}  // namespace mth::flows
