// Verification-subsystem tests: the placement oracle and the ILP certifier
// must (a) pass legitimate flow outputs and (b) flag every injected
// corruption — each mutation here is a kill-switch proving the oracle can
// actually convict the failure class it claims to cover.

#include <gtest/gtest.h>

#include <algorithm>

#include "mth/flows/flow.hpp"
#include "mth/rap/rclegal.hpp"
#include "mth/verify/certifier.hpp"
#include "mth/verify/checker.hpp"

namespace mth::verify {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.04;
    return flows::prepare_case(synth::spec_by_name("aes_300"), opt);
  }();
  return pc;
}

rap::RapOptions rap_options(const flows::PreparedCase& pc) {
  rap::RapOptions ro;
  ro.n_min_pairs = pc.n_min_pairs;
  ro.width_library = pc.original_library.get();
  ro.ilp.time_limit_s = 10;
  return ro;
}

/// Shared legitimately-solved RAP result (solved once; tests mutate copies).
const rap::RapResult& solved() {
  static const rap::RapResult r =
      rap::solve_rap(small_case().initial, rap_options(small_case()));
  return r;
}

bool has_kind(const CheckReport& rep, ViolationKind k) {
  return std::any_of(rep.violations.begin(), rep.violations.end(),
                     [&](const Violation& v) { return v.kind == k; });
}

// --- placement oracle -------------------------------------------------------

TEST(Checker, PassesLegitimatePreparedPlacement) {
  const CheckReport rep = check_placement(small_case().initial);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.instances_checked,
            small_case().initial.netlist.num_instances());
}

TEST(Checker, PassesLegalizedPlacementWithFences) {
  Design d = small_case().initial;
  const auto lr = rap::rc_legalize(d, solved().assignment, {});
  ASSERT_TRUE(lr.success);
  CheckOptions co;
  co.assignment = &solved().assignment;
  const CheckReport rep = check_placement(d, co);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Checker, FlagsInjectedOverlap) {
  Design d = small_case().initial;
  // Teleport instance 1 onto instance 0 — same row, same x.
  d.netlist.instance(1).pos = d.netlist.instance(0).pos;
  const CheckReport rep = check_placement(d);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_kind(rep, ViolationKind::Overlap)) << rep.summary();
}

TEST(Checker, FlagsMinorityOutsideFence) {
  Design d = small_case().initial;
  const RowAssignment& ra = solved().assignment;
  const auto lr = rap::rc_legalize(d, ra, {});
  ASSERT_TRUE(lr.success);
  // Move one minority cell's y into a majority pair (keep row alignment).
  const InstId tall = solved().minority_cells.front();
  int maj_pair = -1;
  for (int p = 0; p < ra.num_pairs(); ++p) {
    if (!ra.is_minority_pair(p)) {
      maj_pair = p;
      break;
    }
  }
  ASSERT_GE(maj_pair, 0);
  d.netlist.instance(tall).pos.y = d.floorplan.pair_lower(maj_pair).y;
  CheckOptions co;
  co.assignment = &ra;
  const CheckReport rep = check_placement(d, co);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_kind(rep, ViolationKind::MinorityOutsideFence))
      << rep.summary();
}

TEST(Checker, FlagsMajorityInsideFence) {
  Design d = small_case().initial;
  const RowAssignment& ra = solved().assignment;
  const auto lr = rap::rc_legalize(d, ra, {});
  ASSERT_TRUE(lr.success);
  InstId shorty = kInvalidId;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    if (!d.is_minority(i)) {
      shorty = i;
      break;
    }
  }
  ASSERT_NE(shorty, kInvalidId);
  int min_pair = -1;
  for (int p = 0; p < ra.num_pairs(); ++p) {
    if (ra.is_minority_pair(p)) {
      min_pair = p;
      break;
    }
  }
  ASSERT_GE(min_pair, 0);
  d.netlist.instance(shorty).pos.y = d.floorplan.pair_lower(min_pair).y;
  CheckOptions co;
  co.assignment = &ra;
  const CheckReport rep = check_placement(d, co);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_kind(rep, ViolationKind::MajorityInsideFence))
      << rep.summary();
}

TEST(Checker, FlagsOverCapacityRow) {
  Design d = small_case().initial;
  // Cram every cell into instance 0's row: hundreds of rows' worth of width
  // cannot fit one row span, so capacity must trip (and, by pigeonhole,
  // overlaps too — but RowOverCapacity is the kind under test).
  const Dbu y0 = d.netlist.instance(0).pos.y;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    d.netlist.instance(i).pos.y = y0;
  }
  const CheckReport rep = check_placement(d);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_kind(rep, ViolationKind::RowOverCapacity)) << rep.summary();
}

TEST(Checker, FlagsOffGridAndOffRow) {
  Design d = small_case().initial;
  d.netlist.instance(0).pos.x += 1;  // off the site grid
  d.netlist.instance(2).pos.y += 3;  // off the row boundary
  const CheckReport rep = check_placement(d);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_kind(rep, ViolationKind::OffSiteGrid)) << rep.summary();
  EXPECT_TRUE(has_kind(rep, ViolationKind::OffRowBoundary)) << rep.summary();
}

TEST(Checker, TruncatesButCounts) {
  Design d = small_case().initial;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    d.netlist.instance(i).pos.x += 1;
  }
  CheckOptions co;
  co.max_violations = 5;
  const CheckReport rep = check_placement(d, co);
  EXPECT_EQ(static_cast<int>(rep.violations.size()), 5);
  EXPECT_GE(rep.total_violations, d.netlist.num_instances());
}

// --- ILP certifier ----------------------------------------------------------

TEST(Certifier, CertifiesLegitimateResult) {
  CertifyOptions co;
  co.require_certificate = true;
  const CertifyReport rep =
      certify_rap(small_case().initial, solved(), rap_options(small_case()), co);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(rep.feasible);
  EXPECT_TRUE(rep.objective_ok);
  EXPECT_TRUE(rep.certificate_ok);
  ASSERT_TRUE(rep.bound_available);
  // The bound must be a true lower bound, and meaningfully close.
  EXPECT_LE(rep.dual_bound, rep.reported_objective * (1 + 1e-9));
  EXPECT_GE(rep.certified_gap, 0.0);
  EXPECT_LE(rep.certified_gap, rep.gap_window_used);
}

TEST(Certifier, FlagsTamperedObjective) {
  rap::RapResult r = solved();
  r.objective += 1000.0;  // claim a cost the assignment does not produce
  const CertifyReport rep =
      certify_rap(small_case().initial, r, rap_options(small_case()));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.objective_ok) << rep.summary();
}

TEST(Certifier, FlagsClusterOnClosedPair) {
  rap::RapResult r = solved();
  int closed = -1;
  for (int p = 0; p < r.assignment.num_pairs(); ++p) {
    if (!r.assignment.is_minority_pair(p)) {
      closed = p;
      break;
    }
  }
  ASSERT_GE(closed, 0);
  r.cluster_pair[0] = closed;  // linking (Eq. 4) violated
  const CertifyReport rep =
      certify_rap(small_case().initial, r, rap_options(small_case()));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.feasible) << rep.summary();
}

TEST(Certifier, FlagsWrongMinorityRowCount) {
  rap::RapResult r = solved();
  int closed = -1;
  for (int p = 0; p < r.assignment.num_pairs(); ++p) {
    if (!r.assignment.is_minority_pair(p)) {
      closed = p;
      break;
    }
  }
  ASSERT_GE(closed, 0);
  r.assignment.pair_is_minority[static_cast<std::size_t>(closed)] = true;
  const CertifyReport rep =
      certify_rap(small_case().initial, r, rap_options(small_case()));
  EXPECT_FALSE(rep.ok());  // Eq. 5: one pair too many
  EXPECT_FALSE(rep.feasible) << rep.summary();
}

TEST(Certifier, FlagsTamperedCertificateCosts) {
  rap::RapResult r = solved();
  ASSERT_NE(r.certificate, nullptr);
  auto cert = std::make_shared<rap::RapCertificate>(*r.certificate);
  cert->model.add_var(0.0, 1.0, 0.0);  // certificate no longer matches
  r.certificate = std::move(cert);
  const CertifyReport rep =
      certify_rap(small_case().initial, r, rap_options(small_case()));
  EXPECT_FALSE(rep.ok());
  EXPECT_FALSE(rep.certificate_ok) << rep.summary();
}

TEST(Certifier, MissingCertificateOnlyFailsWhenRequired) {
  rap::RapResult r = solved();
  r.certificate = nullptr;
  const CertifyReport lax =
      certify_rap(small_case().initial, r, rap_options(small_case()));
  EXPECT_TRUE(lax.ok()) << lax.summary();
  EXPECT_FALSE(lax.bound_available);
  CertifyOptions co;
  co.require_certificate = true;
  const CertifyReport strict =
      certify_rap(small_case().initial, r, rap_options(small_case()), co);
  EXPECT_FALSE(strict.ok());
}

// --- flow hook --------------------------------------------------------------

TEST(FlowVerify, FullFlowPassesWithVerifyOn) {
  flows::FlowOptions opt;
  opt.scale = 0.04;
  opt.verify = true;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_300"), opt);
  // F5 exercises the RAP certification + rc-legalize + finalize hooks.
  EXPECT_NO_THROW(flows::run_flow(pc, flows::FlowId::F5, opt, true, false));
}

// --- sharded certificates ----------------------------------------------------

rap::RapOptions sharded_options() {
  rap::RapOptions ro = rap_options(small_case());
  ro.shards = 4;
  return ro;
}

/// Shared sharded solve (solved once; tests mutate copies).
const rap::RapResult& sharded_solved() {
  static const rap::RapResult r =
      rap::solve_rap_sharded(small_case().initial, sharded_options());
  return r;
}

TEST(Certifier, CertifiesShardedResultViaBandAggregation) {
  const rap::RapResult& r = sharded_solved();
  ASSERT_FALSE(r.bands.empty());
  CertifyOptions co;
  co.require_certificate = true;
  const CertifyReport rep =
      certify_rap(small_case().initial, r, sharded_options(), co);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_TRUE(rep.feasible);
  EXPECT_TRUE(rep.objective_ok);
  EXPECT_TRUE(rep.certificate_ok);
  EXPECT_TRUE(rep.bound_available);
  // The aggregated decomposition bound must still bracket the objective
  // from below within the window; repair may push the gap negative.
  EXPECT_LE(rep.certified_gap, rep.gap_window_used);
}

TEST(Certifier, FlagsTamperedShardedObjective) {
  rap::RapResult r = sharded_solved();
  ASSERT_FALSE(r.bands.empty());
  r.objective = r.objective * 1.5 + 100.0;
  const CertifyReport rep =
      certify_rap(small_case().initial, r, sharded_options());
  EXPECT_FALSE(rep.objective_ok);
  EXPECT_FALSE(rep.ok());
}

TEST(Certifier, FlagsBrokenBandQuotaPartition) {
  rap::RapResult r = sharded_solved();
  ASSERT_FALSE(r.bands.empty());
  r.bands[0].n_min_pairs += 1;  // quota sum no longer equals N_minR
  const CertifyReport rep =
      certify_rap(small_case().initial, r, sharded_options());
  EXPECT_FALSE(rep.certificate_ok);
  EXPECT_FALSE(rep.ok());
}

TEST(Certifier, FlagsBandCertificateQuotaMismatch) {
  rap::RapResult r = sharded_solved();
  ASSERT_GE(r.bands.size(), 2u);
  // Keep the quota sum intact but shift one pair between two certified
  // bands: each band's Eq. 5 row rhs now disagrees with its claimed quota.
  std::size_t a = r.bands.size(), b = r.bands.size();
  for (std::size_t i = 0; i < r.bands.size(); ++i) {
    if (r.bands[i].certificate != nullptr && r.bands[i].n_min_pairs >= 1) {
      if (a == r.bands.size()) {
        a = i;
      } else if (b == r.bands.size()) {
        b = i;
      }
    }
  }
  ASSERT_LT(a, r.bands.size());
  ASSERT_LT(b, r.bands.size());
  r.bands[a].n_min_pairs += 1;
  r.bands[b].n_min_pairs -= 1;
  const CertifyReport rep =
      certify_rap(small_case().initial, r, sharded_options());
  EXPECT_FALSE(rep.certificate_ok);
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace mth::verify
