// mth::ser tests: canonical JSON value layer, envelope versioning, codec
// round-trip byte-identity, and the canonical design/options hashes that key
// the mth_serve result cache.

#include <gtest/gtest.h>

#include <sstream>

#include "mth/flows/flow.hpp"
#include "mth/io/lefio.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/ser/ser.hpp"

namespace mth::ser {
namespace {

const flows::PreparedCase& shared_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.05;
    opt.rap.ilp.time_limit_s = 10;
    return prepare_case(synth::spec_by_name("aes_300"), opt);
  }();
  return pc;
}

const rap::RapResult& shared_rap() {
  static const std::shared_ptr<const rap::RapResult> res = [] {
    const flows::PreparedCase& pc = shared_case();
    flows::FlowOptions opt;
    opt.scale = 0.05;
    opt.rap.ilp.time_limit_s = 10;
    (void)flows::run_flow(pc, flows::FlowId::F4, opt, false, false);
    return pc.rap_cache;
  }();
  return *res;
}

// --- value layer -----------------------------------------------------------

TEST(Value, ParseWriteScalars) {
  EXPECT_EQ(write_compact(parse("true")), "true");
  EXPECT_EQ(write_compact(parse("null")), "null");
  EXPECT_EQ(write_compact(parse("-42")), "-42");
  EXPECT_EQ(write_compact(parse("\"a\\nb\"")), "\"a\\nb\"");
  EXPECT_EQ(write_compact(parse("inf")), "inf");
  EXPECT_EQ(write_compact(parse("-inf")), "-inf");
}

TEST(Value, IntAndDoubleAreDistinct) {
  EXPECT_EQ(parse("3").kind(), Value::Kind::Int);
  EXPECT_EQ(parse("3.0").kind(), Value::Kind::Double);
  // int64 round-trips exactly even where double would lose bits.
  EXPECT_EQ(parse("9007199254740993").as_int(), 9007199254740993);
}

TEST(Value, ObjectsPreserveInsertionOrder) {
  const Value v = parse("{\"z\": 1, \"a\": 2}");
  EXPECT_EQ(write_compact(v), "{\"z\":1,\"a\":2}");
}

TEST(Value, DuplicateKeysRejected) {
  EXPECT_THROW(parse("{\"a\": 1, \"a\": 2}"), Error);
}

TEST(Value, TrailingGarbageRejected) { EXPECT_THROW(parse("1 2"), Error); }

TEST(Value, DepthLimited) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(parse(deep), Error);
}

TEST(Value, DoubleWriteIsStable) {
  // write(parse(write(x))) is byte-stable: %.17g survives a re-parse.
  for (double x : {0.1, 1.0 / 3.0, 1e-300, 12345.6789, 5e-3}) {
    const std::string once = write_compact(Value::number(x));
    EXPECT_EQ(write_compact(parse(once)), once);
  }
}

// --- envelopes -------------------------------------------------------------

TEST(Envelope, FutureVersionRejected) {
  EXPECT_THROW(
      envelope_kind(parse("{\"mth_ser_version\": 2, \"kind\": \"job\"}")),
      Error);
}

TEST(Envelope, MissingVersionRejected) {
  EXPECT_THROW(envelope_kind(parse("{\"kind\": \"job\"}")), Error);
}

TEST(Envelope, UnknownFieldRejected) {
  Value v = to_value(rap::RapOptions{});
  v.set("definitely_not_a_field", Value::integer(1));
  EXPECT_THROW(rap_options_from_value(v), Error);
}

TEST(Envelope, WrongKindRejected) {
  const Value v = to_value(rap::RapOptions{});
  EXPECT_THROW(flow_options_from_value(v), Error);
}

// --- codec round-trips -----------------------------------------------------

// A small design over a LEF-closed library (one that io::write_lef can
// express — master heights match site heights), exercising the embedded-LEF
// codec path used for external designs.
Design tiny_external_design() {
  std::ostringstream lef;
  io::write_lef(lef, *liberty::library_ref());
  std::istringstream lef_in(lef.str());
  Design d;
  d.name = "tiny";
  d.clock_ps = 500.0;
  d.library = io::read_lef(lef_in, "tiny_lib").library;
  int out_pin = -1, in_pin = -1;
  const CellMaster& m = d.library->master(0);
  for (std::size_t p = 0; p < m.pins.size(); ++p) {
    (m.pins[p].is_output ? out_pin : in_pin) = static_cast<int>(p);
  }
  d.netlist.add_instance("u0", 0, {0, 0});
  d.netlist.add_instance("u1", 0, {540, 0});
  const NetId n = d.netlist.add_net("n0");
  d.netlist.connect(n, {0, out_pin});
  d.netlist.connect(n, {1, in_pin});
  return d;
}

TEST(RoundTrip, DesignByteIdentity) {
  const Design d = tiny_external_design();
  const std::string first = write(to_value(d));
  const Design back = design_from_value(parse(first));
  EXPECT_EQ(write(to_value(back)), first);
  EXPECT_EQ(back.netlist.num_instances(), d.netlist.num_instances());
  EXPECT_EQ(canonical_design_hash(back), canonical_design_hash(d));
}

TEST(RoundTrip, BuiltinLibraryByReference) {
  Design d = tiny_external_design();
  d.library = liberty::library_ref();
  const Value v = to_value(d);
  // The bundled library is referenced by name, not embedded as LEF text:
  // electrical data (which LEF cannot carry) survives the round trip.
  EXPECT_EQ(v.get("library").get("source").as_string(), "builtin");
  EXPECT_EQ(v.get("library").find("lef"), nullptr);
  const Design back = design_from_value(v);
  EXPECT_EQ(back.library.get(), d.library.get());
  EXPECT_EQ(write(to_value(back)), write(v));
}

TEST(RoundTrip, FlowOptionsByteIdentity) {
  flows::FlowOptions opt;
  opt.scale = 0.25;
  opt.utilization = 0.55;
  opt.rap.alpha = 0.5;
  opt.rap.ilp.time_limit_s = 7.5;
  const std::string first = write(to_value(opt));
  const flows::FlowOptions back = flow_options_from_value(parse(first));
  EXPECT_EQ(write(to_value(back)), first);
  EXPECT_EQ(back.scale, 0.25);
  EXPECT_EQ(back.rap.ilp.time_limit_s, 7.5);
}

TEST(RoundTrip, PartialOptionsKeepDefaults) {
  // Hand-written envelopes may state only what they override.
  const flows::FlowOptions back = flow_options_from_value(parse(
      "{\"mth_ser_version\": 1, \"kind\": \"flow_options\", \"scale\": 0.5}"));
  EXPECT_EQ(back.scale, 0.5);
  EXPECT_EQ(back.utilization, flows::FlowOptions{}.utilization);
  EXPECT_EQ(back.rap.alpha, rap::RapOptions{}.alpha);
}

TEST(RoundTrip, RapResultByteIdentity) {
  const rap::RapResult& r = shared_rap();
  ASSERT_GT(r.num_clusters, 0);
  const std::string first = write(to_value(r));
  const rap::RapResult back = rap_result_from_value(parse(first));
  EXPECT_EQ(write(to_value(back)), first);
  EXPECT_EQ(back.assignment.num_pairs(), r.assignment.num_pairs());
  EXPECT_EQ(back.minority_cells, r.minority_cells);
  EXPECT_EQ(back.objective, r.objective);
}

TEST(RoundTrip, RapCertificateByteIdentity) {
  const rap::RapResult& r = shared_rap();
  ASSERT_NE(r.certificate, nullptr);
  ASSERT_FALSE(r.certificate->root_basis.empty())
      << "certificate must carry the round-0 basis for ECO hot starts";
  const std::string first = write(to_value(*r.certificate));
  const rap::RapCertificate back = certificate_from_value(parse(first));
  EXPECT_EQ(write(to_value(back)), first);
  EXPECT_EQ(back.duals.size(), r.certificate->duals.size());
  EXPECT_EQ(back.root_lp_objective, r.certificate->root_lp_objective);
}

// --- canonical hashing -----------------------------------------------------

TEST(Hash, PermutedInstanceOrderHashesIdentically) {
  const Design& d = shared_case().initial;
  // Rebuild the netlist with instances stored in reverse order (ids
  // remapped); the canonical hash keys on names, so storage order must not
  // matter — the mth_serve cache treats the two as the same design.
  Design p;
  p.name = d.name;
  p.clock_ps = d.clock_ps;
  p.library = d.library;
  p.floorplan = d.floorplan;
  const int n = d.netlist.num_instances();
  for (int i = n - 1; i >= 0; --i) {
    const Instance& inst = d.netlist.instance(i);
    p.netlist.add_instance(inst.name, inst.master, inst.pos);
  }
  for (PortId i = 0; i < d.netlist.num_ports(); ++i) {
    const Port& port = d.netlist.port(i);
    p.netlist.add_port(port.name, port.pos, port.is_input);
  }
  for (NetId i = 0; i < d.netlist.num_nets(); ++i) {
    const Net& net = d.netlist.net(i);
    const NetId id = p.netlist.add_net(net.name);
    p.netlist.net(id).activity = net.activity;
    p.netlist.net(id).is_clock = net.is_clock;
    for (const PinRef& pin : net.pins) {
      p.netlist.connect(id, pin.is_port()
                                ? pin
                                : PinRef{static_cast<InstId>(n - 1 - pin.inst),
                                         pin.pin});
    }
  }
  EXPECT_EQ(canonical_design_hash(p), canonical_design_hash(d));
}

TEST(Hash, DistinctDesignsHashDifferently) {
  const Design& d = shared_case().initial;
  Design moved = d;
  moved.netlist.instance(0).pos.x += 1;
  EXPECT_NE(canonical_design_hash(moved), canonical_design_hash(d));
}

TEST(Hash, OptionsHashTracksFields) {
  flows::FlowOptions a, b;
  EXPECT_EQ(canonical_options_hash(a), canonical_options_hash(b));
  b.rap.alpha = 0.9;
  EXPECT_NE(canonical_options_hash(a), canonical_options_hash(b));
  EXPECT_EQ(hash_hex(canonical_options_hash(a)).size(), 16u);
}

}  // namespace
}  // namespace mth::ser
