// mLEF transform tests: height normalization, area preservation, index
// stability, round-tripping (paper §III-A).

#include <gtest/gtest.h>

#include "mth/db/mlef.hpp"
#include "mth/liberty/asap7.hpp"

namespace mth {
namespace {

TEST(Mlef, HeightIsAreaWeightedMix) {
  auto lib = liberty::library_ref();
  const Tech& tech = lib->tech();
  const MlefTransform none(lib, 0.0);
  EXPECT_EQ(none.mlef_height(), tech.row_height_6t);
  const MlefTransform all(lib, 1.0);
  EXPECT_EQ(all.mlef_height(), tech.row_height_75t);
  const MlefTransform half(lib, 0.5);
  EXPECT_EQ(half.mlef_height(), (tech.row_height_6t + tech.row_height_75t) / 2);
}

TEST(Mlef, RejectsBadFraction) {
  auto lib = liberty::library_ref();
  EXPECT_THROW(MlefTransform(lib, -0.1), Error);
  EXPECT_THROW(MlefTransform(lib, 1.5), Error);
}

TEST(Mlef, UniformHeightsAndPreservedIndices) {
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.15);
  const auto& mlef = *t.mlef_library();
  ASSERT_EQ(mlef.num_masters(), lib->num_masters());
  for (int i = 0; i < mlef.num_masters(); ++i) {
    const CellMaster& m = mlef.master(i);
    const CellMaster& orig = lib->master(i);
    EXPECT_EQ(m.height, t.mlef_height()) << m.name;
    EXPECT_EQ(m.func, orig.func);
    EXPECT_EQ(m.track_height, orig.track_height)
        << "mLEF must keep the logical track-height tag";
    EXPECT_EQ(m.vt, orig.vt);
    EXPECT_EQ(m.pins.size(), orig.pins.size());
  }
}

TEST(Mlef, AreaNeverShrinks) {
  // width' rounds *up* to the site grid, so mLEF area >= original area and
  // within one site column of it.
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.25);
  const auto& mlef = *t.mlef_library();
  const Dbu site = lib->tech().site_width;
  for (int i = 0; i < mlef.num_masters(); ++i) {
    const Dbu a_orig = lib->master(i).area();
    const Dbu a_mlef = mlef.master(i).area();
    EXPECT_GE(a_mlef, a_orig) << mlef.master(i).name;
    EXPECT_LE(a_mlef, a_orig + site * t.mlef_height()) << mlef.master(i).name;
  }
}

TEST(Mlef, WidthsOnSiteGrid) {
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.10);
  for (const CellMaster& m : t.mlef_library()->masters()) {
    EXPECT_EQ(m.width % lib->tech().site_width, 0) << m.name;
  }
}

TEST(Mlef, PinsStayInsideOutline) {
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.30);
  for (const CellMaster& m : t.mlef_library()->masters()) {
    for (const PinDef& p : m.pins) {
      EXPECT_GE(p.offset.x, 0) << m.name << '/' << p.name;
      EXPECT_LE(p.offset.x, m.width) << m.name << '/' << p.name;
      EXPECT_GE(p.offset.y, 0) << m.name << '/' << p.name;
      EXPECT_LE(p.offset.y, m.height) << m.name << '/' << p.name;
    }
  }
}

TEST(Mlef, RoundTripSwapsLibraries) {
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.2);
  Design d;
  d.library = lib;
  d.netlist.add_instance("a", 0, {0, 0});
  t.to_mlef(d);
  EXPECT_EQ(d.library, t.mlef_library());
  t.revert(d);
  EXPECT_EQ(d.library, lib);
}

TEST(Mlef, ToMlefRejectsWrongSpace) {
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.2);
  Design d;
  d.library = lib;
  t.to_mlef(d);
  EXPECT_THROW(t.to_mlef(d), Error);  // already in mLEF space
  t.revert(d);
  EXPECT_THROW(t.revert(d), Error);  // already reverted
}

TEST(Mlef, WidthDirectionFollowsHeightChange) {
  // The mLEF height sits between the two row heights, so 7.5T masters (whose
  // height shrank) get *wider* to preserve area and 6T masters (whose height
  // grew) get narrower-or-equal (width rounds up to the site grid).
  auto lib = liberty::library_ref();
  const MlefTransform t(lib, 0.5);
  const auto& mlef = *t.mlef_library();
  int tall_wider = 0, short_narrower = 0, tall_total = 0, short_total = 0;
  for (int i = 0; i < mlef.num_masters(); ++i) {
    const CellMaster& orig = lib->master(i);
    const CellMaster& m = mlef.master(i);
    if (orig.track_height == TrackHeight::H75T) {
      ++tall_total;
      if (m.width >= orig.width) ++tall_wider;
    } else {
      ++short_total;
      if (m.width <= orig.width) ++short_narrower;
    }
  }
  EXPECT_EQ(tall_wider, tall_total);
  EXPECT_EQ(short_narrower, short_total);
}

}  // namespace
}  // namespace mth
