// Clock tree synthesis tests: topology invariants, skew/insertion bounds,
// power accounting, placement sensitivity.

#include <gtest/gtest.h>

#include "mth/cts/htree.hpp"
#include "mth/flows/flow.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/util/rng.hpp"

namespace mth::cts {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.05;
    return flows::prepare_case(synth::spec_by_name("aes_360"), opt);
  }();
  return pc;
}

int count_registers(const Design& d) {
  int n = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    n += d.master_of(i).func == CellFunc::Dff;
  }
  return n;
}

TEST(Cts, BasicInvariants) {
  const Design& d = small_case().initial;
  const CtsResult r = build_clock_tree(d);
  EXPECT_GT(r.total_wirelength, 0);
  EXPECT_GT(r.buffers, 0);
  EXPECT_GT(r.levels, 0);
  EXPECT_GT(r.max_insertion_ps, 0.0);
  EXPECT_GE(r.skew_ps, 0.0);
  EXPECT_LE(r.skew_ps, r.max_insertion_ps);
  EXPECT_GT(r.clock_power_mw, 0.0);
}

TEST(Cts, EverySinkGetsInsertionDelay) {
  const Design& d = small_case().initial;
  const CtsResult r = build_clock_tree(d);
  int timed = 0;
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const bool is_reg = d.master_of(i).func == CellFunc::Dff;
    const bool has_t = r.sink_insertion_ps[static_cast<std::size_t>(i)] > 0.0;
    EXPECT_EQ(is_reg, has_t) << d.netlist.instance(i).name;
    timed += has_t;
  }
  EXPECT_EQ(timed, count_registers(d));
}

TEST(Cts, NoRegistersYieldsEmptyResult) {
  Design d;
  d.library = liberty::library_ref();
  const int inv = find_asap7_master(*d.library, CellFunc::Inv, 1,
                                    TrackHeight::H6T, Vt::RVT);
  d.netlist.add_instance("a", inv, {0, 0});
  const CtsResult r = build_clock_tree(d);
  EXPECT_EQ(r.total_wirelength, 0);
  EXPECT_EQ(r.buffers, 0);
  EXPECT_EQ(r.clock_power_mw, 0.0);
}

TEST(Cts, SingleRegisterIsALeaf) {
  Design d;
  d.library = liberty::library_ref();
  const int dff = find_asap7_master(*d.library, CellFunc::Dff, 1,
                                    TrackHeight::H6T, Vt::RVT);
  d.netlist.add_instance("r0", dff, {1000, 1000});
  d.clock_ps = 500;
  const CtsResult r = build_clock_tree(d);
  EXPECT_EQ(r.buffers, 0);  // leaf only, no internal node
  EXPECT_EQ(r.skew_ps, 0.0);
}

TEST(Cts, SkewBoundedByLeafGeometry) {
  // All sinks at the same point: zero wire, zero skew.
  Design d;
  d.library = liberty::library_ref();
  const int dff = find_asap7_master(*d.library, CellFunc::Dff, 1,
                                    TrackHeight::H6T, Vt::RVT);
  for (int k = 0; k < 40; ++k) {
    d.netlist.add_instance("r" + std::to_string(k), dff, {5000, 5000});
  }
  d.clock_ps = 500;
  const CtsResult r = build_clock_tree(d);
  EXPECT_EQ(r.total_wirelength, 0);
  EXPECT_EQ(r.skew_ps, 0.0);
}

TEST(Cts, SmallerLeavesMoreBuffers) {
  const Design& d = small_case().initial;
  CtsOptions small_leaf;
  small_leaf.max_sinks_per_leaf = 2;
  CtsOptions big_leaf;
  big_leaf.max_sinks_per_leaf = 64;
  const CtsResult a = build_clock_tree(d, small_leaf);
  const CtsResult b = build_clock_tree(d, big_leaf);
  EXPECT_GT(a.buffers, b.buffers);
  EXPECT_GE(a.levels, b.levels);
}

TEST(Cts, SpreadRegistersCostMoreClockWire) {
  Design d;
  d.library = liberty::library_ref();
  const int dff = find_asap7_master(*d.library, CellFunc::Dff, 1,
                                    TrackHeight::H6T, Vt::RVT);
  Rng rng(3);
  for (int k = 0; k < 64; ++k) {
    d.netlist.add_instance("r" + std::to_string(k), dff,
                           {rng.uniform_int(0, 2000), rng.uniform_int(0, 2000)});
  }
  d.clock_ps = 500;
  const CtsResult compact = build_clock_tree(d);
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    d.netlist.instance(i).pos = {rng.uniform_int(0, 200000),
                                 rng.uniform_int(0, 200000)};
  }
  const CtsResult spread = build_clock_tree(d);
  EXPECT_GT(spread.total_wirelength, compact.total_wirelength * 10);
  EXPECT_GT(spread.clock_power_mw, compact.clock_power_mw);
}

TEST(Cts, FasterClockMoreClockPower) {
  Design d = small_case().initial;
  d.clock_ps = 360;
  const double fast = build_clock_tree(d).clock_power_mw;
  d.clock_ps = 720;
  const double slow = build_clock_tree(d).clock_power_mw;
  EXPECT_NEAR(fast, 2.0 * slow, fast * 0.01);
}

TEST(Cts, Deterministic) {
  const Design& d = small_case().initial;
  const CtsResult a = build_clock_tree(d);
  const CtsResult b = build_clock_tree(d);
  EXPECT_EQ(a.total_wirelength, b.total_wirelength);
  EXPECT_EQ(a.buffers, b.buffers);
  EXPECT_DOUBLE_EQ(a.skew_ps, b.skew_ps);
}

}  // namespace
}  // namespace mth::cts
