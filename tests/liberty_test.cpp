// Built-in ASAP7-like library tests: completeness, geometry, electrical
// monotonicity trends (drive/VT/track-height scaling).

#include <gtest/gtest.h>

#include "mth/liberty/asap7.hpp"

namespace mth {
namespace {

TEST(Asap7, LibraryComplete) {
  auto lib = liberty::library_ref();
  // 14 functions x 3 drives x 2 heights x 2 VTs.
  EXPECT_EQ(lib->num_masters(), 14 * 3 * 2 * 2);
}

TEST(Asap7, SharedInstanceIsStable) {
  EXPECT_EQ(liberty::library_ref().get(), liberty::library_ref().get());
}

TEST(Asap7, NamesRoundTrip) {
  auto lib = liberty::library_ref();
  for (const CellMaster& m : lib->masters()) {
    EXPECT_EQ(lib->find(m.name), lib->find(asap7_master_name(
                                     m.func, m.drive, m.track_height, m.vt)));
  }
  EXPECT_EQ(lib->find("NOPE_X9"), -1);
}

TEST(Asap7, HeightsMatchTech) {
  auto lib = liberty::library_ref();
  for (const CellMaster& m : lib->masters()) {
    EXPECT_EQ(m.height, lib->tech().row_height(m.track_height)) << m.name;
    EXPECT_EQ(m.width % lib->tech().site_width, 0) << m.name;
    EXPECT_GT(m.width, 0) << m.name;
  }
}

TEST(Asap7, PinStructure) {
  auto lib = liberty::library_ref();
  for (const CellMaster& m : lib->masters()) {
    EXPECT_GE(m.output_pin(), 0) << m.name;
    EXPECT_TRUE(m.pins[static_cast<std::size_t>(m.output_pin())].is_output);
    int n_out = 0, n_clk = 0;
    for (const PinDef& p : m.pins) {
      n_out += p.is_output;
      n_clk += p.is_clock;
      EXPECT_GE(p.offset.x, 0);
      EXPECT_LE(p.offset.x, m.width);
    }
    EXPECT_EQ(n_out, 1) << m.name;
    EXPECT_EQ(n_clk, m.func == CellFunc::Dff ? 1 : 0) << m.name;
    // Logic inputs come first (the generator relies on this layout).
    for (int i = 0; i < num_inputs(m.func); ++i) {
      EXPECT_FALSE(m.pins[static_cast<std::size_t>(i)].is_output) << m.name;
      EXPECT_FALSE(m.pins[static_cast<std::size_t>(i)].is_clock) << m.name;
    }
  }
}

TEST(Asap7, DriveScalingTrends) {
  auto lib = liberty::library_ref();
  for (CellFunc f : {CellFunc::Inv, CellFunc::Nand2, CellFunc::Dff}) {
    for (TrackHeight th : {TrackHeight::H6T, TrackHeight::H75T}) {
      const CellMaster& x1 = lib->master(find_asap7_master(*lib, f, 1, th, Vt::RVT));
      const CellMaster& x2 = lib->master(find_asap7_master(*lib, f, 2, th, Vt::RVT));
      const CellMaster& x4 = lib->master(find_asap7_master(*lib, f, 4, th, Vt::RVT));
      EXPECT_LT(x1.width, x4.width);
      EXPECT_LE(x1.width, x2.width);
      EXPECT_GT(x1.drive_res_kohm, x2.drive_res_kohm);
      EXPECT_GT(x2.drive_res_kohm, x4.drive_res_kohm);
      EXPECT_LT(x1.input_cap_ff, x4.input_cap_ff);
      EXPECT_LT(x1.leakage_nw, x4.leakage_nw);
    }
  }
}

TEST(Asap7, VtTrends) {
  auto lib = liberty::library_ref();
  for (CellFunc f : {CellFunc::Inv, CellFunc::Xor2}) {
    const CellMaster& rvt =
        lib->master(find_asap7_master(*lib, f, 2, TrackHeight::H6T, Vt::RVT));
    const CellMaster& lvt =
        lib->master(find_asap7_master(*lib, f, 2, TrackHeight::H6T, Vt::LVT));
    EXPECT_LT(lvt.drive_res_kohm, rvt.drive_res_kohm);  // LVT faster
    EXPECT_GT(lvt.leakage_nw, rvt.leakage_nw);          // LVT leakier
    EXPECT_EQ(lvt.width, rvt.width);                    // same footprint
  }
}

TEST(Asap7, TrackHeightTrends) {
  auto lib = liberty::library_ref();
  for (CellFunc f : {CellFunc::Inv, CellFunc::Nand2, CellFunc::FullAdder}) {
    const CellMaster& short_cell =
        lib->master(find_asap7_master(*lib, f, 2, TrackHeight::H6T, Vt::RVT));
    const CellMaster& tall_cell =
        lib->master(find_asap7_master(*lib, f, 2, TrackHeight::H75T, Vt::RVT));
    // Tall cells: stronger (lower resistance), fewer sites wide.
    EXPECT_LT(tall_cell.drive_res_kohm, short_cell.drive_res_kohm);
    EXPECT_LE(tall_cell.width, short_cell.width);
    EXPECT_GT(tall_cell.height, short_cell.height);
  }
}

TEST(Asap7, SequentialOnlyDff) {
  auto lib = liberty::library_ref();
  for (const CellMaster& m : lib->masters()) {
    EXPECT_EQ(is_sequential(m.func), m.func == CellFunc::Dff);
    EXPECT_EQ(m.clock_pin() >= 0, m.func == CellFunc::Dff) << m.name;
  }
}

TEST(Asap7, NumInputsConsistent) {
  EXPECT_EQ(num_inputs(CellFunc::Inv), 1);
  EXPECT_EQ(num_inputs(CellFunc::Nand2), 2);
  EXPECT_EQ(num_inputs(CellFunc::Aoi21), 3);
  EXPECT_EQ(num_inputs(CellFunc::FullAdder), 3);
  EXPECT_EQ(num_inputs(CellFunc::Dff), 1);
}

TEST(Asap7, MastersWithFilter) {
  auto lib = liberty::library_ref();
  const auto dffs = lib->masters_with(CellFunc::Dff);
  EXPECT_EQ(dffs.size(), 12u);  // 3 drives x 2 heights x 2 VTs
  for (int id : dffs) EXPECT_EQ(lib->master(id).func, CellFunc::Dff);
}

TEST(Library, DuplicateNameRejected) {
  auto base = liberty::library_ref();
  std::vector<CellMaster> ms{base->master(0), base->master(0)};
  EXPECT_THROW(Library("dup", base->tech(), ms), Error);
}

TEST(Library, OffGridWidthRejected) {
  auto base = liberty::library_ref();
  CellMaster m = base->master(0);
  m.width += 1;  // off the 54 nm site grid
  EXPECT_THROW(Library("bad", base->tech(), {m}), Error);
}

}  // namespace
}  // namespace mth
