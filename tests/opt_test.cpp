// Tests for the extension modules: detailed STA (backward pass), row
// patterns (FinFlex-style), and the track-height swap optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/opt/heightswap.hpp"
#include "mth/rap/patterns.hpp"
#include "mth/rap/rclegal.hpp"
#include "mth/synth/generator.hpp"
#include "mth/timing/sta.hpp"

namespace mth {
namespace {

const flows::PreparedCase& small_case() {
  static const flows::PreparedCase pc = [] {
    flows::FlowOptions opt;
    opt.scale = 0.04;
    return flows::prepare_case(synth::spec_by_name("aes_300"), opt);
  }();
  return pc;
}

// ---------------------------------------------------------------------------
// Detailed STA (backward required-time pass).
// ---------------------------------------------------------------------------

TEST(DetailedSta, SlackVectorSizesAndWorstMatchesWns) {
  const Design& d = small_case().initial;
  const timing::DetailedTiming dt = timing::analyze_detailed(d, nullptr);
  ASSERT_EQ(dt.inst_slack_ps.size(),
            static_cast<std::size_t>(d.netlist.num_instances()));
  double worst = std::numeric_limits<double>::infinity();
  for (double s : dt.inst_slack_ps) worst = std::min(worst, s);
  // The worst per-instance slack equals WNS (ps vs ns).
  EXPECT_NEAR(worst / 1000.0, dt.report.wns_ns, 1e-6);
}

TEST(DetailedSta, ReportMatchesPlainAnalyze) {
  const Design& d = small_case().initial;
  const timing::TimingReport a = timing::analyze(d, nullptr);
  const timing::DetailedTiming dt = timing::analyze_detailed(d, nullptr);
  EXPECT_DOUBLE_EQ(a.wns_ns, dt.report.wns_ns);
  EXPECT_DOUBLE_EQ(a.tns_ns, dt.report.tns_ns);
  EXPECT_DOUBLE_EQ(a.total_power_mw(), dt.report.total_power_mw());
}

TEST(DetailedSta, SlackDecreasesDownstreamAlongPaths) {
  // The driver of a violating endpoint's input cone cannot have more slack
  // than the fanout demands; sanity-check that slacks are finite on timed
  // instances and nonincreasing from a gate to its most critical fanin.
  const Design& d = small_case().initial;
  const timing::DetailedTiming dt = timing::analyze_detailed(d, nullptr);
  int finite = 0;
  for (double s : dt.inst_slack_ps) {
    if (std::isfinite(s)) ++finite;
  }
  EXPECT_GT(finite, d.netlist.num_instances() / 2);
}

TEST(DetailedSta, LongerClockLiftsAllSlacks) {
  Design d = small_case().initial;
  d.clock_ps = 360;
  const auto tight = timing::analyze_detailed(d, nullptr);
  d.clock_ps = 1360;
  const auto loose = timing::analyze_detailed(d, nullptr);
  for (std::size_t i = 0; i < tight.inst_slack_ps.size(); ++i) {
    if (std::isfinite(tight.inst_slack_ps[i])) {
      ASSERT_GE(loose.inst_slack_ps[i], tight.inst_slack_ps[i] - 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Row patterns.
// ---------------------------------------------------------------------------

TEST(Patterns, BudgetsHonored) {
  for (auto p : {rap::RowPattern::EvenlySpread, rap::RowPattern::BottomBlock,
                 rap::RowPattern::CenterBlock}) {
    for (int pairs : {4, 9, 30}) {
      for (int k : {1, 2, pairs / 2}) {
        if (k < 1 || k >= pairs) continue;
        const RowAssignment ra = rap::pattern_assignment(pairs, k, p);
        EXPECT_EQ(ra.num_minority(), k) << to_string(p) << " pairs=" << pairs;
      }
    }
  }
}

TEST(Patterns, AlternatingIsEveryOtherPair) {
  const RowAssignment ra =
      rap::pattern_assignment(10, 3, rap::RowPattern::Alternating);
  EXPECT_EQ(ra.num_minority(), 5);
  for (int p = 0; p < 10; ++p) {
    EXPECT_EQ(ra.is_minority_pair(p), p % 2 == 1);
  }
}

TEST(Patterns, BlocksAreContiguous) {
  const RowAssignment bottom =
      rap::pattern_assignment(12, 4, rap::RowPattern::BottomBlock);
  for (int p = 0; p < 4; ++p) EXPECT_TRUE(bottom.is_minority_pair(p));
  for (int p = 4; p < 12; ++p) EXPECT_FALSE(bottom.is_minority_pair(p));
  const RowAssignment center =
      rap::pattern_assignment(12, 4, rap::RowPattern::CenterBlock);
  int first = -1, last = -1;
  for (int p = 0; p < 12; ++p) {
    if (center.is_minority_pair(p)) {
      if (first < 0) first = p;
      last = p;
    }
  }
  EXPECT_EQ(last - first + 1, 4);  // contiguous
  EXPECT_GT(first, 0);
  EXPECT_LT(last, 11);
}

TEST(Patterns, RejectBadBudget) {
  EXPECT_THROW(rap::pattern_assignment(4, 0, rap::RowPattern::EvenlySpread),
               Error);
  EXPECT_THROW(rap::pattern_assignment(4, 4, rap::RowPattern::EvenlySpread),
               Error);
}

TEST(Patterns, LegalizableLikeAnyAssignment) {
  const auto& pc = small_case();
  Design d = pc.initial;
  const RowAssignment ra = rap::pattern_assignment(
      d.floorplan.num_pairs(), pc.n_min_pairs, rap::RowPattern::EvenlySpread);
  const auto r = rap::rc_legalize(d, ra);
  ASSERT_TRUE(r.success);
  std::string why;
  EXPECT_TRUE(placement_is_legal(d, &why)) << why;
}

TEST(Patterns, CustomRowsBeatCenterBlockOnHpwl) {
  // The paper's Fig. 1 argument: customized rows (RAP) beat region-style
  // blocks. Compare Flow-5-style legalization under both assignments.
  const auto& pc = small_case();
  flows::FlowOptions opt;
  opt.rap.ilp.time_limit_s = 10;
  const flows::FlowResult f5 = flows::run_flow(pc, flows::FlowId::F5, opt, false, false).result;
  Design d = pc.initial;
  const RowAssignment block = rap::pattern_assignment(
      d.floorplan.num_pairs(), pc.n_min_pairs, rap::RowPattern::CenterBlock);
  const auto r = rap::rc_legalize(d, block);
  ASSERT_TRUE(r.success);
  EXPECT_LT(f5.hpwl, total_hpwl(d));
}

// ---------------------------------------------------------------------------
// Track-height swapping.
// ---------------------------------------------------------------------------

Design fresh_netlist(const char* name, double scale) {
  synth::GeneratorOptions gen;
  gen.scale = scale;
  return synth::generate_testcase(synth::spec_by_name(name),
                                  liberty::library_ref(), gen)
      .design;
}

TEST(HeightSwap, NeverWorsensTheKeptIterate) {
  Design d = fresh_netlist("aes_360", 0.05);
  const auto before = timing::analyze(d, nullptr);
  const opt::HeightSwapResult r = opt::optimize_track_heights(d);
  // Kept iterate is lexicographically (WNS, power) no worse than the start.
  EXPECT_GE(r.after.wns_ns, before.wns_ns - 1e-9);
  if (std::abs(r.after.wns_ns - before.wns_ns) < 1e-9) {
    EXPECT_LE(r.after.total_power_mw(), before.total_power_mw() + 1e-9);
  }
}

TEST(HeightSwap, RespectsMinorityBudget) {
  Design d = fresh_netlist("aes_300", 0.05);  // 28% minority already
  opt::HeightSwapOptions o;
  o.minority_budget_pct = 30.0;
  opt::optimize_track_heights(d, o);
  const double pct = 100.0 * d.num_minority() / d.netlist.num_instances();
  EXPECT_LE(pct, 30.0 + 1e-9);
}

TEST(HeightSwap, SwapsPreserveFunctionDriveVt) {
  Design d = fresh_netlist("aes_360", 0.04);
  std::vector<std::int32_t> before(
      static_cast<std::size_t>(d.netlist.num_instances()));
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    before[static_cast<std::size_t>(i)] = d.netlist.instance(i).master;
  }
  opt::optimize_track_heights(d);
  for (InstId i = 0; i < d.netlist.num_instances(); ++i) {
    const CellMaster& was =
        d.library->master(before[static_cast<std::size_t>(i)]);
    const CellMaster& now = d.master_of(i);
    EXPECT_EQ(was.func, now.func);
    EXPECT_EQ(was.drive, now.drive);
    EXPECT_EQ(was.vt, now.vt);
  }
}

TEST(HeightSwap, DemotionReducesPowerWhenTimingSlack) {
  // With a very loose clock everything has slack: the optimizer should demote
  // tall cells and cut leakage/power without violating timing.
  Design d = fresh_netlist("aes_300", 0.05);
  d.clock_ps = 20000;
  const double power_before = timing::analyze(d, nullptr).total_power_mw();
  const int minority_before = d.num_minority();
  opt::HeightSwapOptions o;
  o.max_passes = 6;
  const auto r = opt::optimize_track_heights(d, o);
  EXPECT_GT(r.demoted_to_short, 0);
  EXPECT_LT(d.num_minority(), minority_before);
  EXPECT_LT(r.after.total_power_mw(), power_before);
  EXPECT_EQ(r.after.violating_endpoints, 0);
}

TEST(HeightSwap, ReportsPassesAndCounts) {
  Design d = fresh_netlist("aes_400", 0.04);
  const auto r = opt::optimize_track_heights(d);
  EXPECT_GE(r.passes, 1);
  EXPECT_GE(r.promoted_to_tall, 0);
  EXPECT_GE(r.demoted_to_short, 0);
}

}  // namespace
}  // namespace mth
