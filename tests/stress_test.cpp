// Robustness / stress tests: degenerate designs, capacity pressure, solver
// failure injection, numeric edge cases — things a downstream user will hit.

#include <gtest/gtest.h>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"
#include "mth/legal/abacus.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/lp/simplex.hpp"
#include "mth/rap/rap.hpp"
#include "mth/rap/rclegal.hpp"
#include "mth/util/rng.hpp"

namespace mth {
namespace {

// ---------------------------------------------------------------------------
// Simplex under stress.
// ---------------------------------------------------------------------------

TEST(SimplexStress, RandomEqualitySystemsStayConsistent) {
  // Build LPs from known feasible points: generate x*, derive b = A x*, then
  // check the solver returns Optimal with objective <= c'x* and a feasible x.
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const int nv = 6 + static_cast<int>(rng.uniform_int(0, 10));
    const int nc = 2 + static_cast<int>(rng.uniform_int(0, 5));
    lp::Model m;
    std::vector<double> xstar(static_cast<std::size_t>(nv));
    for (int v = 0; v < nv; ++v) {
      m.add_var(0.0, 10.0, rng.uniform_real(-2, 2));
      xstar[static_cast<std::size_t>(v)] = rng.uniform_real(0.5, 9.5);
    }
    for (int r = 0; r < nc; ++r) {
      std::vector<lp::RowEntry> row;
      double rhs = 0.0;
      for (int v = 0; v < nv; ++v) {
        if (rng.chance(0.5)) {
          const double coef = rng.uniform_real(-2, 2);
          row.push_back({v, coef});
          rhs += coef * xstar[static_cast<std::size_t>(v)];
        }
      }
      if (row.empty()) continue;
      m.add_row(lp::Sense::EQ, rhs, std::move(row));
    }
    const lp::Result res = lp::solve(m);
    ASSERT_EQ(res.status, lp::Status::Optimal) << "trial " << trial;
    EXPECT_LE(res.objective, m.objective_value(xstar) + 1e-6);
    EXPECT_LE(m.max_violation(res.x), 1e-6);
  }
}

TEST(SimplexStress, LargeSparseAssignmentSolves) {
  // 60x60 assignment (7200 vars, 120 rows) — the RAP's LP relaxation shape.
  Rng rng(7);
  lp::Model m;
  const int n = 60;
  std::vector<std::vector<int>> x(static_cast<std::size_t>(n),
                                  std::vector<int>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          m.add_var(0, 1, rng.uniform_real(0, 100));
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<lp::RowEntry> row, col;
    for (int j = 0; j < n; ++j) {
      row.push_back({x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1.0});
      col.push_back({x[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1.0});
    }
    m.add_row(lp::Sense::EQ, 1.0, row);
    m.add_row(lp::Sense::EQ, 1.0, col);
  }
  const lp::Result res = lp::solve(m);
  ASSERT_EQ(res.status, lp::Status::Optimal);
  EXPECT_LE(m.max_violation(res.x), 1e-6);
}

TEST(SimplexStress, TinyCoefficientsAndBigRhs) {
  lp::Model m;
  const int x = m.add_var(0, 1e9, 1.0);
  m.add_row(lp::Sense::GE, 1e6, {{x, 1e-3}});
  const lp::Result res = lp::solve(m);
  ASSERT_EQ(res.status, lp::Status::Optimal);
  EXPECT_NEAR(res.x[0], 1e9, 1.0);
}

// ---------------------------------------------------------------------------
// Degenerate designs through the flow machinery.
// ---------------------------------------------------------------------------

TEST(StressFlow, MinimumSizedDesignSurvivesAllFlows) {
  // The generator clamps to >= 60 cells; drive it at an absurdly low scale.
  flows::FlowOptions opt;
  opt.scale = 0.0001;
  opt.rap.ilp.time_limit_s = 5;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_400"), opt);
  EXPECT_GE(pc.initial.netlist.num_instances(), 60);
  for (auto id : {flows::FlowId::F1, flows::FlowId::F2, flows::FlowId::F3,
                  flows::FlowId::F4, flows::FlowId::F5}) {
    const flows::FlowResult r = flows::run_flow(pc, id, opt, false, false).result;
    EXPECT_GT(r.hpwl, 0) << to_string(id);
  }
}

TEST(StressFlow, HighMinorityFractionCase) {
  // aes_300 is the highest-minority Table II case (28%); run a tight
  // variant with a 92% fill target (full-width Eq. 4 capacity leaves the
  // legalizer only 8% slack in minority rows).
  flows::FlowOptions opt;
  opt.scale = 0.04;
  opt.baseline.minority_row_fill = 0.92;
  opt.rap.minority_row_fill = 0.92;
  opt.rap.ilp.time_limit_s = 10;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_300"), opt);
  const flows::FlowResult r5 = flows::run_flow(pc, flows::FlowId::F5, opt, false, false).result;
  EXPECT_GT(r5.hpwl, 0);
  EXPECT_EQ(r5.n_min_pairs, pc.n_min_pairs);
}

TEST(StressFlow, UtilizationSweepStaysLegal) {
  for (double util : {0.4, 0.6, 0.8}) {
    flows::FlowOptions opt;
    opt.scale = 0.02;
    opt.utilization = util;
    opt.rap.ilp.time_limit_s = 5;
    const flows::PreparedCase pc =
        flows::prepare_case(synth::spec_by_name("des3_290"), opt);
    std::string why;
    EXPECT_TRUE(placement_is_legal(pc.initial, &why)) << "util " << util << ": " << why;
    const flows::FlowResult r = flows::run_flow(pc, flows::FlowId::F5, opt, false, false).result;
    EXPECT_GT(r.hpwl, 0);
  }
}

TEST(StressFlow, RouteOnDenseDesign) {
  flows::FlowOptions opt;
  opt.scale = 0.03;
  opt.utilization = 0.85;  // dense: congestion machinery must engage
  opt.rap.ilp.time_limit_s = 5;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("jpeg_400"), opt);
  const flows::FlowResult r = flows::run_flow(pc, flows::FlowId::F2, opt, true, false).result;
  EXPECT_TRUE(r.routed);
  EXPECT_GT(r.post.routed_wl, 0);
}

// ---------------------------------------------------------------------------
// RAP under capacity pressure and bad budgets.
// ---------------------------------------------------------------------------

TEST(StressRap, OverTightBudgetStillYieldsAssignment) {
  flows::FlowOptions opt;
  opt.scale = 0.03;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_320"), opt);
  rap::RapOptions ro;
  ro.width_library = pc.original_library.get();
  ro.ilp.time_limit_s = 5;
  // Give one more pair than the absolute minimum: still solvable.
  ro.n_min_pairs = std::max(
      1, baseline::auto_minority_pairs(pc.initial, *pc.original_library, 1.0));
  const rap::RapResult r = rap::solve_rap(pc.initial, ro);
  EXPECT_EQ(r.assignment.num_minority(), ro.n_min_pairs);
}

TEST(StressRap, GenerousBudgetUsesExactlyBudget) {
  flows::FlowOptions opt;
  opt.scale = 0.03;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_320"), opt);
  rap::RapOptions ro;
  ro.width_library = pc.original_library.get();
  ro.ilp.time_limit_s = 5;
  ro.n_min_pairs = pc.initial.floorplan.num_pairs() / 2;
  const rap::RapResult r = rap::solve_rap(pc.initial, ro);
  // Eq. 5 is an equality: exactly the budget, even when generous.
  EXPECT_EQ(r.assignment.num_minority(), ro.n_min_pairs);
}

TEST(StressRap, RejectsInvalidOptions) {
  flows::FlowOptions opt;
  opt.scale = 0.02;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_400"), opt);
  rap::RapOptions bad_s;
  bad_s.s = 0.0;
  EXPECT_THROW(rap::solve_rap(pc.initial, bad_s), Error);
  rap::RapOptions bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(rap::solve_rap(pc.initial, bad_alpha), Error);
}

// ---------------------------------------------------------------------------
// Legalizer failure injection.
// ---------------------------------------------------------------------------

TEST(StressLegal, ImpossibleCapacityFailsCleanly) {
  // Shrink the admissible row set to one pair that cannot hold the cells;
  // abacus must return success=false instead of corrupting the design.
  flows::FlowOptions opt;
  opt.scale = 0.03;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_320"), opt);
  Design d = pc.initial;
  legal::AbacusOptions aopt;
  aopt.row_filter = [](InstId, int row) { return row < 2; };  // one pair only
  const auto r = legal::abacus_legalize(d, aopt);
  EXPECT_FALSE(r.success);
}

TEST(StressLegal, RcLegalizeOnAlreadyLegalIsStable) {
  flows::FlowOptions opt;
  opt.scale = 0.03;
  opt.rap.ilp.time_limit_s = 5;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name("aes_360"), opt);
  Design d = pc.initial;
  rap::RapOptions ro;
  ro.n_min_pairs = pc.n_min_pairs;
  ro.width_library = pc.original_library.get();
  ro.ilp.time_limit_s = 5;
  const rap::RapResult rr = rap::solve_rap(d, ro);
  const auto first = rap::rc_legalize(d, rr.assignment);
  ASSERT_TRUE(first.success);
  const Dbu hpwl1 = total_hpwl(d);
  const auto second = rap::rc_legalize(d, rr.assignment);
  ASSERT_TRUE(second.success);
  // Idempotent-ish: a second run may only improve.
  EXPECT_LE(total_hpwl(d), hpwl1);
}

}  // namespace
}  // namespace mth
