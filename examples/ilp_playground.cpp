// Direct use of the MILP solver API (the CPLEX stand-in) on a miniature
// hand-built RAP: 4 clusters, 3 row pairs, one of which must be minority.
// Shows the exact Eq. (1)-(5) formulation without the placement machinery.

#include <iostream>

#include "mth/ilp/solver.hpp"

int main() {
  using namespace mth;

  // Clusters with widths and per-row costs f_cr (rows r0, r1, r2).
  const double width[4] = {30, 20, 25, 10};
  const double cost[4][3] = {
      {5, 9, 21},   // cluster 0 prefers r0
      {7, 4, 16},   // cluster 1 prefers r1
      {12, 6, 8},   // cluster 2 prefers r1, then r2
      {20, 11, 3},  // cluster 3 prefers r2
  };
  const double row_cap = 60;
  const int n_min_rows = 2;

  lp::Model m;
  int x[4][3];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 3; ++r) x[c][r] = m.add_var(0, 1, cost[c][r]);
  }
  int y[3];
  for (int r = 0; r < 3; ++r) y[r] = m.add_var(0, 1, 0);

  for (int c = 0; c < 4; ++c) {  // Eq. 3: unique assignment
    m.add_row(lp::Sense::EQ, 1, {{x[c][0], 1}, {x[c][1], 1}, {x[c][2], 1}});
  }
  for (int r = 0; r < 3; ++r) {  // Eq. 4 + linking: sum w_c x_cr <= cap * y_r
    m.add_row(lp::Sense::LE, 0,
              {{x[0][r], width[0]},
               {x[1][r], width[1]},
               {x[2][r], width[2]},
               {x[3][r], width[3]},
               {y[r], -row_cap}});
  }
  m.add_row(lp::Sense::EQ, n_min_rows, {{y[0], 1}, {y[1], 1}, {y[2], 1}});  // Eq. 5

  std::vector<int> ints;
  for (int v = 0; v < m.num_vars(); ++v) ints.push_back(v);
  const ilp::Result res = ilp::solve(m, ints);

  std::cout << "status: " << to_string(res.status) << ", objective "
            << res.objective << " (bound " << res.best_bound << ", "
            << res.nodes << " nodes)\n";
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 3; ++r) {
      if (res.x[static_cast<std::size_t>(x[c][r])] > 0.5) {
        std::cout << "  cluster " << c << " -> row " << r << "\n";
      }
    }
  }
  std::cout << "  minority rows:";
  for (int r = 0; r < 3; ++r) {
    if (res.x[static_cast<std::size_t>(y[r])] > 0.5) std::cout << " r" << r;
  }
  std::cout << "\n";
  return res.status == ilp::Status::Optimal ? 0 : 1;
}
