// Quickstart: one testcase through the full proposed flow (Flow 5).
//
//   synthesize (Table II spec) -> mLEF -> global place -> RAP (k-means +
//   ILP) -> fence-region legalization -> mLEF revert -> route -> STA.
//
// Usage: quickstart [testcase] [scale]
//   testcase: a Table II short name (default aes_360)
//   scale:    cell-count scale factor (default 0.12)

#include <cstdlib>
#include <iostream>

#include "mth/flows/flow.hpp"
#include "mth/util/log.hpp"
#include "mth/util/str.hpp"

int main(int argc, char** argv) {
  using namespace mth;
  set_log_level(LogLevel::Info);

  const std::string name = argc > 1 ? argv[1] : "aes_360";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.12;

  const synth::TestcaseSpec& spec = synth::spec_by_name(name);
  std::cout << "Testcase " << spec.short_name << " (" << spec.circuit
            << "): clock " << spec.clock_ps << " ps, " << spec.num_cells
            << " cells at full scale, " << spec.pct_75t << "% 7.5T\n"
            << "Running at scale " << scale << "\n\n";

  flows::FlowOptions opt;
  opt.scale = scale;

  const flows::PreparedCase pc = flows::prepare_case(spec, opt);
  std::cout << "Prepared: " << pc.initial.netlist.num_instances() << " cells, "
            << pc.minority_cells << " minority (7.5T), "
            << pc.initial.floorplan.num_pairs() << " row pairs, N_minR = "
            << pc.n_min_pairs << "\n";

  const flows::FlowResult r =
      flows::run_flow(pc, flows::FlowId::F5, opt, /*with_route=*/true,
                      /*capture_design=*/false)
          .result;

  std::cout << "\n=== " << to_string(r.flow) << " on " << r.testcase << " ===\n";
  std::cout << "post-place  displacement : "
            << format_fixed(static_cast<double>(r.displacement) / 1e8, 3)
            << " x10^5 um\n";
  std::cout << "post-place  HPWL         : "
            << format_fixed(static_cast<double>(r.hpwl) / 1e8, 3) << " x10^5 um\n";
  std::cout << "RAP clusters             : " << r.num_clusters << " (ILP "
            << ilp::to_string(r.ilp_status) << ", "
            << format_fixed(r.ilp_seconds, 2) << " s)\n";
  std::cout << "post-route  wirelength   : "
            << format_fixed(static_cast<double>(r.post.routed_wl) / 1e8, 3)
            << " x10^5 um\n";
  std::cout << "post-route  total power  : "
            << format_fixed(r.post.timing.total_power_mw(), 2) << " mW\n";
  std::cout << "post-route  WNS          : " << format_fixed(r.post.timing.wns_ns, 3)
            << " ns,  TNS: " << format_fixed(r.post.timing.tns_ns, 1) << " ns\n";
  std::cout << "runtime     assign/legal : " << format_fixed(r.assign_seconds, 2)
            << " / " << format_fixed(r.legal_seconds, 2) << " s\n";
  return 0;
}
