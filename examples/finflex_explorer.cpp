// Explores the paper's future-work directions on one testcase:
//   1. track-height swapping at the netlist stage (opt::optimize_track_heights)
//   2. placement on pre-determined row patterns vs ILP-customized rows.
//
// Usage: finflex_explorer [testcase] [scale]

#include <cstdlib>
#include <iostream>

#include "mth/db/metrics.hpp"
#include "mth/flows/flow.hpp"
#include "mth/liberty/asap7.hpp"
#include "mth/opt/heightswap.hpp"
#include "mth/rap/patterns.hpp"
#include "mth/rap/rclegal.hpp"
#include "mth/report/table.hpp"
#include "mth/util/log.hpp"
#include "mth/util/str.hpp"

int main(int argc, char** argv) {
  using namespace mth;
  set_log_level(LogLevel::Warn);
  const std::string name = argc > 1 ? argv[1] : "aes_340";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.08;

  // --- 1. netlist-stage track-height swapping --------------------------------
  synth::GeneratorOptions gen;
  gen.scale = scale;
  Design netlist =
      synth::generate_testcase(synth::spec_by_name(name), liberty::library_ref(), gen)
          .design;
  std::cout << "Track-height swapping on " << name << " (clock "
            << netlist.clock_ps << " ps):\n";
  const int min_before = netlist.num_minority();
  const opt::HeightSwapResult hs = opt::optimize_track_heights(netlist);
  std::cout << "  7.5T instances: " << min_before << " -> "
            << netlist.num_minority() << "  (+" << hs.promoted_to_tall
            << " promoted, -" << hs.demoted_to_short << " demoted, "
            << hs.passes << " passes)\n";
  std::cout << "  WNS: " << format_fixed(hs.before.wns_ns, 3) << " -> "
            << format_fixed(hs.after.wns_ns, 3) << " ns;  power: "
            << format_fixed(hs.before.total_power_mw(), 2) << " -> "
            << format_fixed(hs.after.total_power_mw(), 2) << " mW\n\n";

  // --- 2. pre-determined patterns vs customized rows ---------------------------
  flows::FlowOptions fopt;
  fopt.scale = scale;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name(name), fopt);
  const flows::FlowResult f5 = flows::run_flow(pc, flows::FlowId::F5, fopt, false, false).result;

  report::Table t({"Row assignment", "HPWL (um)", "Displacement (um)"});
  t.add_row({"customized (Flow 5, ILP)",
             format_count(static_cast<long long>(f5.hpwl / 1000)),
             format_count(static_cast<long long>(f5.displacement / 1000))});
  for (auto p : {rap::RowPattern::EvenlySpread, rap::RowPattern::Alternating,
                 rap::RowPattern::BottomBlock, rap::RowPattern::CenterBlock}) {
    Design d = pc.initial;
    const RowAssignment ra = rap::pattern_assignment(
        d.floorplan.num_pairs(), pc.n_min_pairs, p);
    if (!rap::rc_legalize(d, ra, fopt.rclegal).success) continue;
    t.add_row({to_string(p),
               format_count(static_cast<long long>(total_hpwl(d) / 1000)),
               format_count(static_cast<long long>(
                   total_displacement(d, pc.initial_positions) / 1000))});
  }
  t.print(std::cout);
  return 0;
}
