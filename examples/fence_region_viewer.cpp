// Reproduces the three panels of paper Fig. 3 as SVG files:
//   (a) unconstrained initial placement,
//   (b) fence regions derived from the ILP row assignment,
//   (c) final row-constraint placement.
// Blue = majority (6T) cells, red = minority (7.5T) cells, yellow = fences.
//
// Usage: fence_region_viewer [testcase] [scale] [outdir]

#include <cstdlib>
#include <iostream>

#include "mth/flows/flow.hpp"
#include "mth/rap/fence.hpp"
#include "mth/report/svg.hpp"
#include "mth/util/log.hpp"

int main(int argc, char** argv) {
  using namespace mth;
  set_log_level(LogLevel::Warn);

  const std::string name = argc > 1 ? argv[1] : "aes_360";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.10;
  const std::string outdir = argc > 3 ? argv[3] : ".";

  flows::FlowOptions opt;
  opt.scale = scale;
  const flows::PreparedCase pc =
      flows::prepare_case(synth::spec_by_name(name), opt);

  // (a) initial unconstrained placement.
  report::write_file(outdir + "/fig3a_initial.svg",
                     report::placement_svg(pc.initial, {}));

  // (b) RAP solution -> fence regions over the initial placement.
  Design design = pc.initial;
  rap::RapOptions ro = opt.rap;
  ro.n_min_pairs = pc.n_min_pairs;
  ro.width_library = pc.original_library.get();
  const rap::RapResult rr = rap::solve_rap(design, ro);
  const auto fences = rap::fence_regions(design.floorplan, rr.assignment);
  report::write_file(outdir + "/fig3b_fences.svg",
                     report::placement_svg(design, fences));

  // (c) final row-constraint placement.
  const auto lr = rap::rc_legalize(design, rr.assignment, opt.rclegal);
  report::write_file(outdir + "/fig3c_final.svg",
                     report::placement_svg(design, fences));

  std::cout << "Wrote " << outdir << "/fig3{a,b,c}_*.svg  ("
            << rr.assignment.num_minority() << " minority pairs, HPWL "
            << lr.hpwl_before / 1000 << " -> " << lr.hpwl_after / 1000
            << " um)\n";
  return 0;
}
