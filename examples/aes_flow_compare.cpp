// Five-flow comparison on one testcase (Table III / IV / V in miniature).
//
// Runs Flows (1)-(5) from the same unconstrained initial placement and
// prints post-placement displacement/HPWL plus post-route WL/power/WNS/TNS,
// showing the paper's headline ordering: Flow (5) beats Flow (2).
//
// Usage: aes_flow_compare [testcase] [scale]

#include <cstdlib>
#include <iostream>

#include "mth/flows/flow.hpp"
#include "mth/report/table.hpp"
#include "mth/util/log.hpp"
#include "mth/util/str.hpp"

int main(int argc, char** argv) {
  using namespace mth;
  set_log_level(LogLevel::Warn);

  const std::string name = argc > 1 ? argv[1] : "aes_300";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.12;
  const synth::TestcaseSpec& spec = synth::spec_by_name(name);

  flows::FlowOptions opt;
  opt.scale = scale;

  std::cout << "Preparing " << spec.short_name << " at scale " << scale
            << " ...\n";
  const flows::PreparedCase pc = flows::prepare_case(spec, opt);
  std::cout << pc.initial.netlist.num_instances() << " cells, "
            << pc.minority_cells << " minority, N_minR = " << pc.n_min_pairs
            << "\n\n";

  report::Table table({"Flow", "Disp (um)", "HPWL (um)", "WL (um)",
                       "Power (mW)", "WNS (ns)", "TNS (ns)", "Runtime (s)"});
  for (flows::FlowId id : {flows::FlowId::F1, flows::FlowId::F2,
                           flows::FlowId::F3, flows::FlowId::F4,
                           flows::FlowId::F5}) {
    const flows::FlowResult r = flows::run_flow(pc, id, opt, true, false).result;
    table.add_row({to_string(id),
                   format_count(static_cast<long long>(r.displacement / 1000)),
                   format_count(static_cast<long long>(r.hpwl / 1000)),
                   format_count(static_cast<long long>(r.post.routed_wl / 1000)),
                   format_fixed(r.post.timing.total_power_mw(), 2),
                   format_fixed(r.post.timing.wns_ns, 3),
                   format_fixed(r.post.timing.tns_ns, 1),
                   format_fixed(r.total_seconds, 2)});
  }
  table.print(std::cout);
  std::cout << "\nFlow (1) is the unconstrained mLEF placement (invalid as"
               " silicon, shown as the baseline; its displacement is 0 by"
               " definition).\n";
  return 0;
}
